// ClusterMonitor tests: autonomous detection + recovery of every tier
// (the ISSUE 5 acceptance scenario), deterministic detection latency as
// a function of the heartbeat knobs, gray-failure quarantine, and the
// reconfiguration races (Stop() mid-recovery, manual Failover racing the
// monitor's auto-promote, concurrent manual failovers).

#include <gtest/gtest.h>

#include <map>

#include "chaos/fault_plan.h"
#include "service/cluster_monitor.h"
#include "service/deployment.h"

namespace socrates {
namespace service {
namespace {

using engine::Engine;
using engine::MakeKey;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  int guard = 0;
  while (!done && s.Step()) {
    if (++guard > 200000000) break;
  }
  ASSERT_TRUE(done) << "driver task did not finish";
}

DeploymentOptions SmallDeployment(int page_servers = 2,
                                  int secondaries = 1) {
  DeploymentOptions o;
  o.partition_map.pages_per_partition = 256;
  o.num_page_servers = page_servers;
  o.num_secondaries = secondaries;
  o.compute.mem_pages = 64;
  o.compute.ssd_pages = 256;
  o.page_server.mem_pages = 64;
  o.page_server.checkpoint_interval_us = 200 * 1000;
  return o;
}

Task<> LoadRows(Engine* e, uint64_t start, uint64_t n,
                const std::string& prefix) {
  for (uint64_t i = start; i < start + n; i += 8) {
    auto txn = e->Begin();
    for (uint64_t k = i; k < std::min(start + n, i + 8); k++) {
      (void)e->Put(txn.get(), MakeKey(1, k), prefix + std::to_string(k));
    }
    Status s = co_await e->Commit(txn.get());
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

Task<> VerifyRows(Engine* e, uint64_t start, uint64_t n,
                  const std::string& prefix) {
  auto txn = e->Begin(true);
  for (uint64_t k = start; k < start + n; k++) {
    auto v = co_await e->Get(txn.get(), MakeKey(1, k));
    EXPECT_TRUE(v.ok()) << "key " << k << ": " << v.status().ToString();
    if (v.ok()) {
      EXPECT_EQ(*v, prefix + std::to_string(k));
    }
  }
  (void)co_await e->Commit(txn.get());
}

int CountAction(const ClusterMonitor& mon, const std::string& action) {
  int n = 0;
  for (const RecoveryRecord& r : mon.ledger()) {
    if (r.action == action) n++;
  }
  return n;
}

// ---------------------------------------------------------------------
// Acceptance: a seeded plan kills the Primary and one Page Server; the
// monitor, with no manual intervention, promotes the Secondary and
// reseeds the Page Server from XStore; the cluster serves reads and
// writes afterwards.
TEST(MonitorTest, AutoRecoversPrimaryAndPageServerFromPlan) {
  Simulator s;
  Deployment d(s, SmallDeployment(2, 1));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    MonitorOptions mo;  // 10ms interval, 5ms timeout, 3 misses
    ClusterMonitor* mon = d.EnableMonitor(mo);
    co_await LoadRows(d.primary_engine(), 0, 200, "v");

    chaos::FaultPlan plan;
    plan.KillPrimary(s.now() + 50 * 1000)
        .KillPageServer(s.now() + 150 * 1000, 0);
    chaos::SchedulePlan(s, plan, d.ChaosTargets());

    // Wait for both recoveries to complete (bounded).
    for (int i = 0; i < 600; i++) {
      if (mon->ledger().size() >= 2 && mon->idle()) break;
      co_await sim::Delay(s, 10 * 1000);
    }
    EXPECT_GE(mon->ledger().size(), 2u);
    EXPECT_TRUE(mon->idle());
    EXPECT_EQ(CountAction(*mon, "promote-secondary"), 1);
    EXPECT_EQ(CountAction(*mon, "reseed-page-server"), 1);

    // The promoted Secondary is the Primary and serves writes + reads.
    EXPECT_NE(d.primary(), nullptr);
    if (d.primary() == nullptr) {
      d.Stop();
      co_return;
    }
    EXPECT_TRUE(d.primary()->alive());
    EXPECT_TRUE(d.page_server(0)->running());
    co_await LoadRows(d.primary_engine(), 200, 50, "v");
    co_await VerifyRows(d.primary_engine(), 0, 250, "v");

    // Every record carries the full MTTR phase split.
    for (const RecoveryRecord& r : mon->ledger()) {
      EXPECT_TRUE(r.ok) << r.site << " " << r.action;
      EXPECT_GE(r.detected_us, r.suspected_us);
      EXPECT_GE(r.elected_us, r.detected_us);
      EXPECT_GE(r.promoted_us, r.elected_us);
      EXPECT_GE(r.warmed_us, r.promoted_us);
    }
    EXPECT_GT(mon->unavailable_us(), 0u);
    d.Stop();
  });
}

// ---------------------------------------------------------------------
// Detection latency must follow the heartbeat knobs deterministically:
// identical runs agree exactly; with probes every I and declaration at
// K consecutive misses (each observed T after its send), the latency
// from death to detection lies in [(K-1)*I, K*I + T + I].
SimTime MeasureDetectLatency(SimTime interval_us, SimTime timeout_us,
                             int threshold) {
  Simulator s;
  Deployment d(s, SmallDeployment(1, 1));
  SimTime latency = 0;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    MonitorOptions mo;
    mo.heartbeat_interval_us = interval_us;
    mo.heartbeat_timeout_us = timeout_us;
    mo.suspicion_threshold = threshold;
    ClusterMonitor* mon = d.EnableMonitor(mo);
    co_await LoadRows(d.primary_engine(), 0, 64, "v");
    co_await sim::Delay(s, 5 * interval_us);
    SimTime killed = s.now();
    d.CrashPrimary();
    for (int i = 0; i < 2000 && mon->ledger().empty(); i++) {
      co_await sim::Delay(s, 1000);
    }
    EXPECT_FALSE(mon->ledger().empty());
    if (!mon->ledger().empty()) {
      latency = mon->ledger()[0].detected_us - killed;
    }
    d.Stop();
  });
  return latency;
}

TEST(MonitorTest, DetectionLatencyTracksHeartbeatKnobsDeterministically) {
  const SimTime fast = MeasureDetectLatency(10000, 5000, 3);
  const SimTime fast_again = MeasureDetectLatency(10000, 5000, 3);
  EXPECT_EQ(fast, fast_again) << "identical knobs must detect at the "
                                 "exact same simulated instant";
  EXPECT_GE(fast, 2u * 10000);
  EXPECT_LE(fast, 3u * 10000 + 5000 + 10000);

  const SimTime slow = MeasureDetectLatency(40000, 20000, 3);
  EXPECT_GT(slow, fast) << "larger interval/timeout must detect later";
  EXPECT_GE(slow, 2u * 40000);
  EXPECT_LE(slow, 3u * 40000 + 20000 + 40000);

  const SimTime patient = MeasureDetectLatency(10000, 5000, 6);
  EXPECT_GT(patient, fast) << "higher suspicion threshold detects later";
}

// ---------------------------------------------------------------------
// A dead Secondary is replaced without touching the Primary.
TEST(MonitorTest, ReplacesDeadSecondary) {
  Simulator s;
  Deployment d(s, SmallDeployment(1, 2));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    ClusterMonitor* mon = d.EnableMonitor(MonitorOptions{});
    co_await LoadRows(d.primary_engine(), 0, 64, "v");
    d.CrashSecondary(0);
    for (int i = 0; i < 600; i++) {
      if (!mon->ledger().empty() && mon->idle()) break;
      co_await sim::Delay(s, 10 * 1000);
    }
    EXPECT_EQ(CountAction(*mon, "replace-secondary"), 1);
    EXPECT_EQ(d.num_secondaries(), 2);
    EXPECT_TRUE(d.secondary(0)->alive());
    EXPECT_TRUE(d.secondary(1)->alive());
    EXPECT_TRUE(d.primary()->alive());
    d.Stop();
  });
}

// A partition's Page Server fails over to its warm replica when one
// exists — never a reseed.
TEST(MonitorTest, PrefersWarmReplicaOverReseed) {
  Simulator s;
  Deployment d(s, SmallDeployment(2, 0));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 64, "v");
    EXPECT_TRUE((co_await d.AddPageServerReplica(1)).ok());
    ClusterMonitor* mon = d.EnableMonitor(MonitorOptions{});
    d.CrashPageServer(1);
    for (int i = 0; i < 600; i++) {
      if (!mon->ledger().empty() && mon->idle()) break;
      co_await sim::Delay(s, 10 * 1000);
    }
    EXPECT_EQ(CountAction(*mon, "failover-ps-replica"), 1);
    EXPECT_EQ(CountAction(*mon, "reseed-page-server"), 0);
    EXPECT_EQ(d.ServingPageServer(1), d.page_server_replica(1));
    co_await VerifyRows(d.primary_engine(), 0, 64, "v");
    d.Stop();
  });
}

// ---------------------------------------------------------------------
// Gray failure: the node answers, but slowly; the monitor quarantines
// it after gray_threshold slow probes instead of declaring it dead.
TEST(MonitorTest, QuarantinesGrayPageServer) {
  Simulator s;
  Deployment d(s, SmallDeployment(1, 0));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    MonitorOptions mo;
    mo.gray_latency_us = 1000;
    mo.gray_threshold = 3;
    ClusterMonitor* mon = d.EnableMonitor(mo);
    co_await LoadRows(d.primary_engine(), 0, 32, "v");
    d.chaos().SetGrayDelay("ps-0", 3000);  // slow, not dead
    for (int i = 0; i < 600; i++) {
      if (mon->stats().quarantines > 0) break;
      co_await sim::Delay(s, 10 * 1000);
    }
    EXPECT_EQ(mon->stats().quarantines, 1u);
    EXPECT_EQ(CountAction(*mon, "quarantine-gray"), 1);
    // Quarantine cleared the injected latency; no recovery was run.
    EXPECT_EQ(d.chaos().GrayDelayUs("ps-0"), 0u);
    EXPECT_EQ(mon->stats().recoveries_started, 0u);
    EXPECT_TRUE(d.page_server(0)->running());
    d.Stop();
  });
}

// ---------------------------------------------------------------------
// Stop() is idempotent and safe while a recovery is mid-flight: the
// in-flight reconfiguration aborts at its stopping() check instead of
// reconfiguring a half-torn-down deployment.
TEST(MonitorTest, StopIsIdempotentDuringRecovery) {
  Simulator s;
  Deployment d(s, SmallDeployment(1, 1));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    ClusterMonitor* mon = d.EnableMonitor(MonitorOptions{});
    co_await LoadRows(d.primary_engine(), 0, 64, "v");
    d.CrashPrimary();
    // Wait until the recovery has started, then stop mid-flight.
    for (int i = 0; i < 600 && mon->stats().recoveries_started == 0; i++) {
      co_await sim::Delay(s, 5 * 1000);
    }
    EXPECT_GE(mon->stats().recoveries_started, 1u);
    d.Stop();
    d.Stop();  // second call must be a no-op
    co_await sim::Delay(s, 300 * 1000);  // let everything unwind
    EXPECT_TRUE(d.stopping());
  });
}

// ---------------------------------------------------------------------
// Regression (found while wiring the monitor): Deployment::Failover used
// to bounds-check and dereference primary_ before any serialization. A
// second failover arriving while the first was suspended in Promote()
// dereferenced the null primary_. Both calls must now serialize on the
// reconfig mutex and complete without UB.
TEST(MonitorTest, ConcurrentManualFailoversSerialize) {
  Simulator s;
  Deployment d(s, SmallDeployment(1, 2));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 64, "v");
    Status s1, s2;
    bool done1 = false, done2 = false;
    Spawn(s, [](Deployment* dep, Status* out, bool* done) -> Task<> {
      *out = co_await dep->Failover(0);
      *done = true;
    }(&d, &s1, &done1));
    Spawn(s, [](Deployment* dep, Status* out, bool* done) -> Task<> {
      *out = co_await dep->Failover(0);
      *done = true;
    }(&d, &s2, &done2));
    for (int i = 0; i < 600 && !(done1 && done2); i++) {
      co_await sim::Delay(s, 10 * 1000);
    }
    EXPECT_TRUE(done1 && done2);
    if (!(done1 && done2)) {
      d.Stop();
      co_return;
    }
    // Serialized: both promotions ran back to back (each consumed one
    // Secondary); the survivors form a healthy cluster.
    EXPECT_TRUE(s1.ok()) << s1.ToString();
    EXPECT_TRUE(s2.ok()) << s2.ToString();
    EXPECT_NE(d.primary(), nullptr);
    if (d.primary() == nullptr) {
      d.Stop();
      co_return;
    }
    EXPECT_TRUE(d.primary()->alive());
    EXPECT_EQ(d.num_secondaries(), 0);
    co_await LoadRows(d.primary_engine(), 64, 16, "v");
    co_await VerifyRows(d.primary_engine(), 0, 80, "v");
    d.Stop();
  });
}

// Manual Failover racing the monitor's auto-promote: exactly one
// promotion happens — the monitor re-validates under the reconfig lock
// and stands down when it finds a healthy Primary.
TEST(MonitorTest, MonitorStandsDownWhenManualFailoverWins) {
  Simulator s;
  Deployment d(s, SmallDeployment(1, 1));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    ClusterMonitor* mon = d.EnableMonitor(MonitorOptions{});
    co_await LoadRows(d.primary_engine(), 0, 64, "v");
    d.CrashPrimary();
    // Give the detector time to suspect, then beat it with a manual
    // failover (it may also win the race — either way, one promotion).
    co_await sim::Delay(s, 15 * 1000);
    Status manual = co_await d.Failover(0);
    for (int i = 0; i < 600 && !mon->idle(); i++) {
      co_await sim::Delay(s, 10 * 1000);
    }
    int promotions = CountAction(*mon, "promote-secondary") +
                     (manual.ok() ? 1 : 0);
    EXPECT_EQ(promotions, 1)
        << "manual=" << manual.ToString()
        << " monitor=" << CountAction(*mon, "promote-secondary");
    EXPECT_NE(d.primary(), nullptr);
    if (d.primary() == nullptr) {
      d.Stop();
      co_return;
    }
    EXPECT_TRUE(d.primary()->alive());
    co_await LoadRows(d.primary_engine(), 64, 16, "v");
    co_await VerifyRows(d.primary_engine(), 0, 80, "v");
    d.Stop();
  });
}

}  // namespace
}  // namespace service
}  // namespace socrates
