// Workload-layer tests: CDB load/transaction execution, mixes, CPU
// accounting, the TPC-E-like skew, and the client driver — driven against
// a standalone engine (MemLogSink) and against a full Socrates deployment.

#include <gtest/gtest.h>

#include "service/deployment.h"
#include "workload/cdb.h"
#include "workload/tpce_like.h"
#include "workload/workload.h"

namespace socrates {
namespace workload {
namespace {

using engine::Engine;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  while (!done && s.Step()) {
  }
  ASSERT_TRUE(done) << "driver task did not finish";
}

struct StandaloneEngine {
  Simulator sim;
  engine::MemLogSink sink{sim};
  engine::BufferPoolOptions pool_opts;
  std::unique_ptr<engine::BufferPool> pool;
  std::unique_ptr<Engine> eng;
  sim::CpuResource cpu{sim, 8};

  StandaloneEngine() {
    pool_opts.mem_pages = 1 << 20;
    pool = std::make_unique<engine::BufferPool>(sim, pool_opts, nullptr);
    eng = std::make_unique<Engine>(sim, pool.get(), &sink);
    Spawn(sim, [](Engine* e) -> Task<> {
      EXPECT_TRUE((co_await e->Bootstrap()).ok());
    }(eng.get()));
    sim.Run();
  }
};

TEST(CdbTest, LoadPopulatesAllTables) {
  StandaloneEngine se;
  CdbOptions opts;
  opts.scale_factor = 10;
  CdbWorkload cdb(opts, CdbMix::Default());
  RunSim(se.sim, [&]() -> Task<> {
    EXPECT_TRUE((co_await cdb.Load(se.eng.get())).ok());
    // Spot-check each table: first and last row exist.
    auto txn = se.eng->Begin(true);
    for (int t = 0; t < 6; t++) {
      auto first = co_await se.eng->Get(
          txn.get(), engine::MakeKey(static_cast<TableId>(t + 1), 0));
      EXPECT_TRUE(first.ok()) << "table " << t;
      if (first.ok()) {
        EXPECT_EQ(first->size(), cdb.options().payload_bytes[t]);
      }
      auto last = co_await se.eng->Get(
          txn.get(), engine::MakeKey(static_cast<TableId>(t + 1),
                                     cdb.TableRows(t) - 1));
      EXPECT_TRUE(last.ok()) << "table " << t;
      auto past = co_await se.eng->Get(
          txn.get(), engine::MakeKey(static_cast<TableId>(t + 1),
                                     cdb.TableRows(t)));
      EXPECT_TRUE(past.status().IsNotFound()) << "table " << t;
    }
    (void)co_await se.eng->Commit(txn.get());
  });
}

TEST(CdbTest, MixesProduceExpectedWriteShare) {
  StandaloneEngine se;
  CdbOptions opts;
  opts.scale_factor = 5;
  opts.cpu_scale = 0.1;  // fast test
  auto measure = [&](CdbMix mix) {
    CdbWorkload cdb(opts, mix);
    int writes = 0, total = 0;
    RunSim(se.sim, [&]() -> Task<> {
      Random rng(7);
      for (int i = 0; i < 300; i++) {
        TxnResult r = co_await cdb.RunOne(se.eng.get(), nullptr, &rng);
        EXPECT_TRUE(r.committed);
        total++;
        if (r.is_write) writes++;
      }
    });
    return std::make_pair(writes, total);
  };
  // Load once.
  CdbWorkload loader(opts, CdbMix::Default());
  RunSim(se.sim, [&]() -> Task<> {
    EXPECT_TRUE((co_await loader.Load(se.eng.get())).ok());
  });
  auto [w_default, n_default] = measure(CdbMix::Default());
  EXPECT_GT(w_default, n_default / 8);  // ~25% writes
  EXPECT_LT(w_default, n_default / 2);
  auto [w_maxlog, n_maxlog] = measure(CdbMix::MaxLog());
  EXPECT_EQ(w_maxlog, n_maxlog);  // all writes
  auto [w_ro, n_ro] = measure(CdbMix::ReadOnly());
  EXPECT_EQ(w_ro, 0);
  auto [w_lite, n_lite] = measure(CdbMix::UpdateLite());
  EXPECT_EQ(w_lite, n_lite);
}

TEST(CdbTest, MaxLogProducesFarMoreLogThanReadOnly) {
  StandaloneEngine se;
  CdbOptions opts;
  opts.scale_factor = 5;
  opts.cpu_scale = 0.1;
  CdbWorkload loader(opts, CdbMix::Default());
  RunSim(se.sim, [&]() -> Task<> {
    EXPECT_TRUE((co_await loader.Load(se.eng.get())).ok());
  });
  auto log_for = [&](CdbMix mix) {
    CdbWorkload cdb(opts, mix);
    uint64_t before = se.sink.end_lsn();
    RunSim(se.sim, [&]() -> Task<> {
      Random rng(11);
      for (int i = 0; i < 100; i++) {
        (void)co_await cdb.RunOne(se.eng.get(), nullptr, &rng);
      }
    });
    return se.sink.end_lsn() - before;
  };
  uint64_t maxlog = log_for(CdbMix::MaxLog());
  uint64_t lite = log_for(CdbMix::UpdateLite());
  uint64_t ro = log_for(CdbMix::ReadOnly());
  EXPECT_GT(maxlog, 20 * lite);  // bulk updates dwarf tiny updates
  EXPECT_EQ(ro, 0u);             // read-only writes no log
}

TEST(TpceTest, SkewConcentratesAccesses) {
  StandaloneEngine se;
  TpceOptions opts;
  opts.customers = 5000;
  opts.cpu_scale = 0.1;
  TpceLikeWorkload tpce(opts);
  RunSim(se.sim, [&]() -> Task<> {
    EXPECT_TRUE((co_await tpce.Load(se.eng.get())).ok());
    Random rng(3);
    for (int i = 0; i < 200; i++) {
      TxnResult r = co_await tpce.RunOne(se.eng.get(), nullptr, &rng);
      EXPECT_TRUE(r.committed);
    }
  });
  EXPECT_GT(se.eng->stats().reads, 400u);
}

TEST(DriverTest, ReportsThroughputAndCpu) {
  StandaloneEngine se;
  CdbOptions opts;
  opts.scale_factor = 5;
  opts.cpu_scale = 1.0;
  CdbWorkload cdb(opts, CdbMix::Default());
  DriverReport report;
  RunSim(se.sim, [&]() -> Task<> {
    EXPECT_TRUE((co_await cdb.Load(se.eng.get())).ok());
    DriverOptions dopts;
    dopts.clients = 16;
    dopts.warmup_us = 100 * 1000;
    dopts.measure_us = 1 * 1000 * 1000;
    report = co_await RunDriver(se.sim, se.eng.get(), &se.cpu, &cdb,
                                dopts);
  });
  EXPECT_GT(report.commits, 100u);
  EXPECT_NEAR(report.total_tps,
              static_cast<double>(report.commits), 1e-3 * report.commits);
  EXPECT_GT(report.cpu_utilization, 0.3);  // 16 clients on 8 cores: busy
  EXPECT_LE(report.cpu_utilization, 1.0);
  EXPECT_GT(report.read_tps, report.write_tps);  // default mix is ~75% read
  EXPECT_GT(report.latency_us.count(), 0u);
}

TEST(DriverTest, MoreClientsMoreThroughputUntilSaturation) {
  StandaloneEngine se;
  CdbOptions opts;
  opts.scale_factor = 5;
  CdbWorkload cdb(opts, CdbMix::UpdateLite());
  RunSim(se.sim, [&]() -> Task<> {
    EXPECT_TRUE((co_await cdb.Load(se.eng.get())).ok());
  });
  auto tps_with = [&](int clients) {
    DriverReport report;
    RunSim(se.sim, [&]() -> Task<> {
      DriverOptions dopts;
      dopts.clients = clients;
      dopts.warmup_us = 50 * 1000;
      dopts.measure_us = 500 * 1000;
      report = co_await RunDriver(se.sim, se.eng.get(), &se.cpu, &cdb,
                                  dopts);
    });
    return report.total_tps;
  };
  double t1 = tps_with(1);
  double t8 = tps_with(8);
  EXPECT_GT(t8, t1 * 2);  // scales with clients before saturation
}

// Full-stack: drive CDB against a real Socrates deployment.
TEST(DriverTest, RunsAgainstSocratesDeployment) {
  Simulator s;
  service::DeploymentOptions o;
  o.partition_map.pages_per_partition = 4096;
  o.num_page_servers = 1;
  o.compute.mem_pages = 2048;
  o.compute.ssd_pages = 8192;
  service::Deployment d(s, o);
  CdbOptions copts;
  copts.scale_factor = 5;
  CdbWorkload cdb(copts, CdbMix::Default());
  DriverReport report;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    EXPECT_TRUE((co_await cdb.Load(d.primary_engine())).ok());
    DriverOptions dopts;
    dopts.clients = 8;
    dopts.warmup_us = 50 * 1000;
    dopts.measure_us = 500 * 1000;
    report = co_await RunDriver(s, d.primary_engine(),
                                &d.primary()->cpu(), &cdb, dopts);
  });
  EXPECT_GT(report.commits, 20u);
  // Bulk updates on a tiny scale factor legitimately conflict sometimes
  // (first-committer-wins), but commits must dominate.
  EXPECT_LT(report.aborts, report.commits);
  d.Stop();
}

TEST(DriverTest, HtapMixPushesAnalyticScansDown) {
  Simulator s;
  service::DeploymentOptions o;
  o.partition_map.pages_per_partition = 4096;
  o.num_page_servers = 1;
  o.compute.mem_pages = 256;  // analytic spans overflow the memory tier
  o.compute.ssd_pages = 1024;
  // This test asserts that scans *reach* the Page Server; pin the legacy
  // selectivity gate so the cost planner can't keep warm ranges local.
  o.compute.pushdown_cost_planning = false;
  service::Deployment d(s, o);
  CdbOptions copts;
  copts.scale_factor = 5;
  CdbWorkload cdb(copts, CdbMix::Htap());
  DriverReport report;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    EXPECT_TRUE((co_await cdb.Load(d.primary_engine())).ok());
    DriverOptions dopts;
    dopts.clients = 8;
    dopts.warmup_us = 50 * 1000;
    dopts.measure_us = 500 * 1000;
    report = co_await RunDriver(s, d.primary_engine(),
                                &d.primary()->cpu(), &cdb, dopts);
  });
  EXPECT_GT(report.commits, 20u);
  // The 30% analytic slice ran filtered scans, and at least some of
  // them were evaluated on the Page Server (the mix mods are all
  // selective enough or aggregating).
  const engine::EngineStats& es = d.primary_engine()->stats();
  EXPECT_GT(es.filtered_scans, 0u);
  EXPECT_GT(es.pushdown_scans, 0u);
  EXPECT_GT(d.page_server(0)->scan_requests(), 0u);
  d.Stop();
}

}  // namespace
}  // namespace workload
}  // namespace socrates
