// Stress/regression tests for BufferPool concurrency: these pin down two
// real races found during development —
//  (1) SSD slot recycling while a promotion read was in flight delivered
//      another page's image under the wrong page id;
//  (2) a reader promoting the *stale* SSD image while the eviction spill
//      of the fresh image was still in flight lost updates.
// Both manifest only under concurrent access with tiny cache tiers.

#include <gtest/gtest.h>

#include <map>

#include "engine/buffer_pool.h"
#include "engine/btree_page.h"

namespace socrates {
namespace engine {
namespace {

using sim::Simulator;
using sim::Spawn;
using sim::Task;

// Fetcher serving freshly formatted pages stamped with their id; tracks
// how many times each page was fetched.
class FreshFetcher : public PageFetcher {
 public:
  explicit FreshFetcher(Simulator& sim) : sim_(sim) {}

  Task<Result<storage::Page>> FetchPage(PageId page_id) override {
    co_await sim::Delay(sim_, 250);
    fetches_++;
    storage::Page p;
    BTreePage::Format(&p, page_id, 0, kMinKey, kMaxKey, kInvalidPageId);
    p.set_page_lsn(1);
    p.UpdateChecksum();
    co_return p;
  }

  int fetches_ = 0;

 private:
  Simulator& sim_;
};

TEST(BufferPoolStressTest, ConcurrentReadersNeverSeeWrongPage) {
  Simulator sim;
  FreshFetcher fetcher(sim);
  BufferPoolOptions opts;
  opts.mem_pages = 4;
  opts.ssd_pages = 8;  // heavy slot recycling
  BufferPool pool(sim, opts, &fetcher);

  const PageId kPages = 64;
  int errors = 0;
  int wrong_page = 0;
  int completed = 0;
  for (int r = 0; r < 8; r++) {
    Spawn(sim, [](Simulator& s, BufferPool& p, int seed, int* errs,
                  int* wrong, int* done) -> Task<> {
      Random rng(seed);
      for (int i = 0; i < 1500; i++) {
        PageId want = rng.Uniform(kPages);
        Result<PageRef> ref = co_await p.GetPage(want);
        if (!ref.ok()) {
          (*errs)++;
        } else if (ref->page()->page_id() != want) {
          (*wrong)++;
        }
        if (i % 7 == 0) co_await sim::Delay(s, rng.Uniform(50));
      }
      (*done)++;
    }(sim, pool, 100 + r, &errors, &wrong_page, &completed));
  }
  sim.Run();
  EXPECT_EQ(completed, 8);
  EXPECT_EQ(errors, 0);      // no Corruption statuses (race detected)
  EXPECT_EQ(wrong_page, 0);  // and certainly no wrong images delivered
}

TEST(BufferPoolStressTest, EvictionNeverLosesUpdates) {
  // Writers bump a per-page counter stored in the page body; constant
  // eviction/promotion churn must never regress any counter.
  Simulator sim;
  BufferPoolOptions opts;
  opts.mem_pages = 3;
  opts.ssd_pages = 256;  // covering SSD: full evictions never happen
  BufferPool pool(sim, opts, nullptr);

  const PageId kPages = 32;
  // Materialize pages.
  bool init_done = false;
  Spawn(sim, [](BufferPool& p, bool* done) -> Task<> {
    for (PageId id = 0; id < kPages; id++) {
      Result<PageRef> ref = p.NewPage(id);
      EXPECT_TRUE(ref.ok());
      ref->page()->Format(id, storage::PageType::kBTreeLeaf);
      EncodeFixed64(ref->page()->data() + 100, 0);  // counter
      ref.value().MarkDirty();
    }
    *done = true;
    co_return;
  }(pool, &init_done));
  sim.Run();
  ASSERT_TRUE(init_done);

  std::map<PageId, uint64_t> model;
  int violations = 0;
  int done_workers = 0;
  for (int w = 0; w < 6; w++) {
    Spawn(sim, [](Simulator& s, BufferPool& p,
                  std::map<PageId, uint64_t>* m, int seed, int* viol,
                  int* done) -> Task<> {
      Random rng(seed);
      for (int i = 0; i < 1200; i++) {
        PageId id = rng.Uniform(kPages);
        Result<PageRef> ref = co_await p.GetPage(id);
        if (!ref.ok()) {
          (*viol)++;
          continue;
        }
        uint64_t stored = DecodeFixed64(ref->page()->data() + 100);
        uint64_t expect = (*m)[id];
        if (stored < expect) (*viol)++;  // lost update!
        // Synchronous read-modify-write while pinned.
        EncodeFixed64(ref->page()->data() + 100, stored + 1);
        ref->page()->set_page_lsn(stored + 2);
        ref.value().MarkDirty();
        if (stored + 1 > (*m)[id]) (*m)[id] = stored + 1;
        if (i % 5 == 0) co_await sim::Delay(s, rng.Uniform(30));
      }
      (*done)++;
    }(sim, pool, &model, 7 + w, &violations, &done_workers));
  }
  sim.Run();
  EXPECT_EQ(done_workers, 6);
  EXPECT_EQ(violations, 0);
}

TEST(BufferPoolStressTest, CrashDuringEvictionSpillIsSafe) {
  // Regression: eviction used to run as a detached coroutine holding a
  // raw BufferPool*; a Crash() while a spill was suspended in the SSD
  // write left it to resume against torn state. The life-token fence
  // must let in-flight spills finish their I/O without touching the
  // pool, and the pool must recover cleanly afterwards.
  Simulator sim;
  BufferPoolOptions opts;
  opts.mem_pages = 2;
  opts.ssd_pages = 16;
  BufferPool pool(sim, opts, nullptr);

  bool done = false;
  Spawn(sim, [](Simulator& s, BufferPool& p, bool* done) -> Task<> {
    for (PageId id = 0; id < 8; id++) {
      Result<PageRef> ref = p.NewPage(id);
      EXPECT_TRUE(ref.ok());
      ref->page()->Format(id, storage::PageType::kBTreeLeaf);
      ref->page()->set_page_lsn(1);
      ref.value().MarkDirty();
    }
    // Eviction spills are now queued/in flight. Crash before they land.
    co_await sim::Yield(s);
    p.Crash();
    co_await sim::Delay(s, 5000);  // drain the fenced background tasks
    Result<size_t> rec = co_await p.Recover(/*durable_end_lsn=*/100);
    EXPECT_TRUE(rec.ok());
    // Whatever survived must be self-consistent and servable.
    for (PageId id = 0; id < 8; id++) {
      Result<PageRef> ref = co_await p.GetIfCached(id);
      if (ref.ok()) {
        EXPECT_EQ(ref->page()->page_id(), id);
      }
    }
    // And the pool is still fully functional after the crash.
    Result<PageRef> fresh = p.NewPage(100);
    EXPECT_TRUE(fresh.ok());
    *done = true;
  }(sim, pool, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(BufferPoolStressTest, DestroyPoolWithInflightSpillIsSafe) {
  // Destroying the pool while spills/prefetches are suspended must not
  // leave detached coroutines resuming into freed memory (the SSD
  // device is kept alive by shared ownership; pool state is fenced by
  // the life token). ASan in CI is the real assertion here.
  Simulator sim;
  FreshFetcher fetcher(sim);
  {
    BufferPoolOptions opts;
    opts.mem_pages = 2;
    opts.ssd_pages = 16;
    auto pool = std::make_unique<BufferPool>(sim, opts, &fetcher);
    for (PageId id = 0; id < 8; id++) {
      Result<PageRef> ref = pool->NewPage(id);
      EXPECT_TRUE(ref.ok());
      ref->page()->Format(id, storage::PageType::kBTreeLeaf);
      ref->page()->set_page_lsn(1);
      ref.value().MarkDirty();
    }
    pool->Prefetch({50, 51, 52});  // remote prefetches also in flight
    for (int i = 0; i < 4; i++) sim.Step();
    // Spills are suspended inside SSD writes; destroy the pool now.
  }
  sim.Run();  // drain the orphaned coroutines — must not crash
}

TEST(BufferPoolStressTest, CrashCancelsInflightPrefetch) {
  Simulator sim;
  FreshFetcher fetcher(sim);
  BufferPoolOptions opts;
  opts.mem_pages = 16;
  BufferPool pool(sim, opts, &fetcher);

  bool done = false;
  Spawn(sim, [](Simulator& s, BufferPool& p, bool* done) -> Task<> {
    p.Prefetch({1, 2, 3, 4});
    co_await sim::Yield(s);
    p.Crash();  // fetches still in flight
    co_await sim::Delay(s, 2000);
    // The fetched images must NOT have been installed into the
    // post-crash pool (they reflect pre-crash speculation).
    EXPECT_EQ(p.mem_resident(), 0u);
    // The pool remains usable for demand traffic.
    Result<PageRef> ref = co_await p.GetPage(1);
    EXPECT_TRUE(ref.ok());
    *done = true;
  }(sim, pool, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace engine
}  // namespace socrates
