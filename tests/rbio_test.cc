// RBIO protocol tests (§3.4): codec round trips, version negotiation,
// transient-failure retries, QoS replica selection, GetPageRange /
// readahead, and the end-to-end path through a real Page Server.

#include <gtest/gtest.h>

#include "rbio/rbio.h"
#include "service/deployment.h"

namespace socrates {
namespace rbio {
namespace {

using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  while (!done && s.Step()) {
  }
  ASSERT_TRUE(done);
}

// ------------------------------------------------------------------ codec

TEST(RbioCodecTest, GetPageRoundTrip) {
  GetPageRequest req;
  req.page_id = 42;
  req.min_lsn = 123456;
  GetPageRequest out;
  uint16_t version = 0;
  ASSERT_TRUE(GetPageRequest::Decode(Slice(req.Encode()), &out, &version)
                  .ok());
  EXPECT_EQ(version, kProtocolVersion);
  EXPECT_EQ(out.page_id, 42u);
  EXPECT_EQ(out.min_lsn, 123456u);
}

TEST(RbioCodecTest, GetPageRangeRoundTrip) {
  GetPageRangeRequest req;
  req.first_page = 100;
  req.count = 128;
  req.min_lsn = 777;
  GetPageRangeRequest out;
  uint16_t version = 0;
  ASSERT_TRUE(
      GetPageRangeRequest::Decode(Slice(req.Encode()), &out, &version)
          .ok());
  EXPECT_EQ(out.first_page, 100u);
  EXPECT_EQ(out.count, 128u);
  EXPECT_EQ(out.min_lsn, 777u);
}

TEST(RbioCodecTest, TypeConfusionRejected) {
  GetPageRequest get;
  GetPageRangeRequest range;
  uint16_t v;
  EXPECT_TRUE(GetPageRangeRequest::Decode(Slice(get.Encode()), &range, &v)
                  .IsInvalidArgument());
  EXPECT_TRUE(GetPageRequest::Decode(Slice(range.Encode()), &get, &v)
                  .IsInvalidArgument());
}

TEST(RbioCodecTest, VersionNegotiation) {
  GetPageRequest req;
  req.page_id = 1;
  // An ancient version is rejected...
  std::string old = req.Encode(/*version=*/0);
  GetPageRequest out;
  uint16_t v;
  EXPECT_TRUE(
      GetPageRequest::Decode(Slice(old), &out, &v).IsNotSupported());
  // ...a still-supported older version is accepted (auto-versioning).
  std::string v1 = req.Encode(kMinSupportedVersion);
  EXPECT_TRUE(GetPageRequest::Decode(Slice(v1), &out, &v).ok());
  EXPECT_EQ(v, kMinSupportedVersion);
  // ...a future version is rejected.
  std::string future = req.Encode(kProtocolVersion + 1);
  EXPECT_TRUE(
      GetPageRequest::Decode(Slice(future), &out, &v).IsNotSupported());
}

TEST(RbioCodecTest, ResponseRoundTripWithPages) {
  PageResponse resp;
  resp.status = Status::OK();
  for (PageId id : {5u, 9u}) {
    storage::Page p;
    p.Format(id, storage::PageType::kBTreeLeaf);
    p.UpdateChecksum();
    resp.pages.push_back(std::move(p));
  }
  PageResponse out;
  ASSERT_TRUE(PageResponse::Decode(Slice(resp.Encode()), &out).ok());
  EXPECT_TRUE(out.status.ok());
  ASSERT_EQ(out.pages.size(), 2u);
  EXPECT_EQ(out.pages[0].page_id(), 5u);
  EXPECT_EQ(out.pages[1].page_id(), 9u);
  EXPECT_TRUE(out.pages[1].VerifyChecksum().ok());
}

TEST(RbioCodecTest, ErrorStatusSurvivesWire) {
  PageResponse resp;
  resp.status = Status::NotFound("no such page");
  PageResponse out;
  ASSERT_TRUE(PageResponse::Decode(Slice(resp.Encode()), &out).ok());
  EXPECT_TRUE(out.status.IsNotFound());
  EXPECT_EQ(out.status.message(), "no such page");
}

TEST(RbioCodecTest, TruncatedFramesRejected) {
  GetPageRequest req;
  req.page_id = 7;
  std::string wire = req.Encode();
  GetPageRequest out;
  uint16_t v;
  for (size_t cut : {size_t{1}, size_t{3}, wire.size() - 1}) {
    EXPECT_FALSE(
        GetPageRequest::Decode(Slice(wire.data(), cut), &out, &v).ok());
  }
}

TEST(RbioCodecTest, BatchRequestRoundTrip) {
  GetPageBatchRequest req;
  req.entries.push_back({11, 100});
  req.entries.push_back({22, 0});
  req.entries.push_back({33, 999999});
  std::string wire = req.Encode();
  GetPageBatchRequest out;
  uint16_t v = 0;
  ASSERT_TRUE(GetPageBatchRequest::Decode(Slice(wire), &out, &v).ok());
  EXPECT_EQ(v, kProtocolVersion);
  ASSERT_EQ(out.entries.size(), 3u);
  EXPECT_EQ(out.entries[0].page_id, 11u);
  EXPECT_EQ(out.entries[0].min_lsn, 100u);
  EXPECT_EQ(out.entries[2].min_lsn, 999999u);
  // Truncations anywhere are rejected, never mis-read.
  for (size_t cut = 0; cut < wire.size(); cut++) {
    EXPECT_FALSE(
        GetPageBatchRequest::Decode(Slice(wire.data(), cut), &out, &v)
            .ok());
  }
}

TEST(RbioCodecTest, BatchRequestVersionGate) {
  GetPageBatchRequest req;
  req.entries.push_back({1, 1});
  GetPageBatchRequest out;
  uint16_t v;
  // A server capped below v3 (not yet upgraded) rejects batch frames.
  EXPECT_TRUE(GetPageBatchRequest::Decode(Slice(req.Encode()), &out, &v,
                                          /*max_version=*/2)
                  .IsNotSupported());
  // A batch frame mislabeled with a pre-batch version is also rejected.
  EXPECT_TRUE(GetPageBatchRequest::Decode(
                  Slice(req.Encode(/*version=*/2)), &out, &v)
                  .IsNotSupported());
}

TEST(RbioCodecTest, BatchResponseRoundTripMixedStatuses) {
  GetPageBatchResponse resp;
  resp.status = Status::OK();
  GetPageBatchResponse::Entry ok_entry;
  ok_entry.status = Status::OK();
  ok_entry.page.Format(77, storage::PageType::kBTreeLeaf);
  ok_entry.page.UpdateChecksum();
  resp.entries.push_back(std::move(ok_entry));
  GetPageBatchResponse::Entry missing;
  missing.status = Status::NotFound("no such page");
  resp.entries.push_back(std::move(missing));
  GetPageBatchResponse out;
  ASSERT_TRUE(
      GetPageBatchResponse::Decode(Slice(resp.Encode()), &out).ok());
  EXPECT_TRUE(out.status.ok());
  ASSERT_EQ(out.entries.size(), 2u);
  EXPECT_TRUE(out.entries[0].status.ok());
  EXPECT_EQ(out.entries[0].page.page_id(), 77u);
  EXPECT_TRUE(out.entries[0].page.VerifyChecksum().ok());
  EXPECT_TRUE(out.entries[1].status.IsNotFound());
  EXPECT_EQ(out.entries[1].status.message(), "no such page");
}

TEST(RbioCodecTest, V2NotSupportedReplyDecodesAsBatchFallbackSignal) {
  // The negotiation fallback hinges on this: a pre-v3 server answers an
  // unknown frame with PageResponse{NotSupported, 0 pages}, whose wire
  // prefix is identical to an empty batch response.
  PageResponse v2_reject;
  v2_reject.status = Status::NotSupported("rbio: unsupported request");
  GetPageBatchResponse out;
  ASSERT_TRUE(
      GetPageBatchResponse::Decode(Slice(v2_reject.Encode()), &out).ok());
  EXPECT_TRUE(out.status.IsNotSupported());
  EXPECT_TRUE(out.entries.empty());
}

TEST(RbioCodecTest, ScanRangeRequestRoundTrip) {
  ScanRangeRequest req;
  req.start_page = 17;
  req.start_key = 1000;
  req.end_key = 5000;
  req.limit = 64;
  req.max_pages = 8;
  req.min_lsn = 4242;
  req.read_ts = 99;
  req.predicate = common::ScanPredicate::KeyModEq(16, 3);
  req.projection.extents.push_back({4, 12});
  req.aggregate = common::ScanAggregate::Sum(8);
  std::string wire = req.Encode();
  ScanRangeRequest out;
  uint16_t v = 0;
  ASSERT_TRUE(ScanRangeRequest::Decode(Slice(wire), &out, &v).ok());
  EXPECT_EQ(v, kProtocolVersion);
  EXPECT_EQ(out.start_page, 17u);
  EXPECT_EQ(out.start_key, 1000u);
  EXPECT_EQ(out.end_key, 5000u);
  EXPECT_EQ(out.limit, 64u);
  EXPECT_EQ(out.max_pages, 8u);
  EXPECT_EQ(out.min_lsn, 4242u);
  EXPECT_EQ(out.read_ts, 99u);
  EXPECT_EQ(out.predicate.op, common::PredOp::kKeyModEq);
  EXPECT_EQ(out.predicate.a, 16u);
  EXPECT_EQ(out.predicate.b, 3u);
  ASSERT_EQ(out.projection.extents.size(), 1u);
  EXPECT_EQ(out.projection.extents[0].offset, 4u);
  EXPECT_EQ(out.projection.extents[0].len, 12u);
  EXPECT_EQ(out.aggregate.fn, common::AggFn::kSum);
  EXPECT_EQ(out.aggregate.field_offset, 8u);
  // Truncations anywhere are rejected, never mis-read.
  for (size_t cut = 0; cut < wire.size(); cut++) {
    EXPECT_FALSE(
        ScanRangeRequest::Decode(Slice(wire.data(), cut), &out, &v).ok());
  }
}

TEST(RbioCodecTest, ScanRangeVersionGate) {
  ScanRangeRequest req;
  ScanRangeRequest out;
  uint16_t v;
  // A server capped at v3 (not yet upgraded) rejects scan frames.
  EXPECT_TRUE(ScanRangeRequest::Decode(Slice(req.Encode()), &out, &v,
                                       /*max_version=*/3)
                  .IsNotSupported());
  // A scan frame mislabeled with a pre-v4 version is also rejected.
  EXPECT_TRUE(ScanRangeRequest::Decode(Slice(req.Encode(/*version=*/3)),
                                       &out, &v)
                  .IsNotSupported());
}

TEST(RbioCodecTest, ScanRangeResponseTupleRoundTrip) {
  ScanRangeResponse resp;
  resp.status = Status::OK();
  resp.complete = false;
  resp.resume_key = 777;
  resp.next_leaf = 31;
  resp.rows_scanned = 120;
  resp.pages_scanned = 3;
  std::string v1 = "hello", v2 = "";
  resp.tuples.push_back({10, Slice(v1)});
  resp.tuples.push_back({20, Slice(v2)});
  auto frame = std::make_shared<const std::string>(resp.Encode());
  ScanRangeResponse out;
  ASSERT_TRUE(ScanRangeResponse::Decode(frame, &out).ok());
  EXPECT_TRUE(out.status.ok());
  EXPECT_FALSE(out.complete);
  EXPECT_FALSE(out.aggregated);
  EXPECT_EQ(out.resume_key, 777u);
  EXPECT_EQ(out.next_leaf, 31u);
  EXPECT_EQ(out.rows_scanned, 120u);
  EXPECT_EQ(out.pages_scanned, 3u);
  ASSERT_EQ(out.tuples.size(), 2u);
  EXPECT_EQ(out.tuples[0].key, 10u);
  EXPECT_EQ(out.tuples[0].value.ToString(), "hello");
  EXPECT_EQ(out.tuples[1].value.size(), 0u);
  // Tuple slices alias the frame; the decode must have retained it.
  EXPECT_NE(out.owner, nullptr);
}

TEST(RbioCodecTest, ScanRangeResponseAggRoundTrip) {
  ScanRangeResponse resp;
  resp.status = Status::OK();
  resp.complete = true;
  resp.aggregated = true;
  resp.agg.rows = 42;
  resp.agg.value = 123456789;
  auto frame = std::make_shared<const std::string>(resp.Encode());
  ScanRangeResponse out;
  ASSERT_TRUE(ScanRangeResponse::Decode(frame, &out).ok());
  EXPECT_TRUE(out.complete);
  EXPECT_TRUE(out.aggregated);
  EXPECT_EQ(out.agg.rows, 42u);
  EXPECT_EQ(out.agg.value, 123456789u);
  EXPECT_TRUE(out.tuples.empty());
}

TEST(RbioCodecTest, V3NotSupportedReplyDecodesAsScanFallbackSignal) {
  // Same negotiation trick as batch-vs-v2: a pre-v4 server answers a
  // kScanRange frame with PageResponse{NotSupported}, whose wire prefix
  // ScanRangeResponse::Decode reads as an error status and returns OK
  // with that status — the client's cue to fall back and memoize.
  PageResponse v3_reject;
  v3_reject.status = Status::NotSupported("rbio: unsupported request");
  auto frame = std::make_shared<const std::string>(v3_reject.Encode());
  ScanRangeResponse out;
  ASSERT_TRUE(ScanRangeResponse::Decode(frame, &out).ok());
  EXPECT_TRUE(out.status.IsNotSupported());
  EXPECT_TRUE(out.tuples.empty());
}

TEST(RbioCodecTest, ScanRangeRequestV5RoundTrip) {
  ScanRangeRequest req;
  req.start_key = 100;
  req.end_key = 900;
  req.predicate = common::ScanPredicate::KeyRange(100, 900);
  req.predicate.And(common::ScanPredicate::KeyModEq(7, 3));
  req.aggregate = common::ScanAggregate::Count();
  req.extra_aggregates.push_back(common::ScanAggregate::Sum(0));
  req.extra_aggregates.push_back(common::ScanAggregate::Max(8));
  EXPECT_TRUE(req.NeedsV5());
  EXPECT_EQ(req.MinFrameVersion(), kScanExprV5MinVersion);
  std::string wire = req.Encode(req.MinFrameVersion());
  ScanRangeRequest out;
  uint16_t v = 0;
  ASSERT_TRUE(ScanRangeRequest::Decode(Slice(wire), &out, &v).ok());
  EXPECT_EQ(v, kScanExprV5MinVersion);
  EXPECT_EQ(out.predicate.op, common::PredOp::kKeyRange);
  ASSERT_EQ(out.predicate.conjuncts.size(), 1u);
  EXPECT_EQ(out.predicate.conjuncts[0].a, 7u);
  ASSERT_EQ(out.extra_aggregates.size(), 2u);
  EXPECT_EQ(out.extra_aggregates[0].fn, common::AggFn::kSum);
  EXPECT_EQ(out.extra_aggregates[1].fn, common::AggFn::kMax);
  // A server capped at v4 rejects the v5 frame — negotiation signal.
  EXPECT_TRUE(ScanRangeRequest::Decode(Slice(wire), &out, &v,
                                       /*max_version=*/4)
                  .IsNotSupported());
  // Truncations rejected, never mis-read.
  for (size_t cut = 0; cut < wire.size(); cut++) {
    EXPECT_FALSE(
        ScanRangeRequest::Decode(Slice(wire.data(), cut), &out, &v).ok());
  }
}

TEST(RbioCodecTest, V4ExpressibleSpecFramesByteIdenticalV4) {
  // A spec using no v5 vocabulary must hit the wire exactly as the v4
  // codec framed it, whatever the client's own protocol version — the
  // backward-compat contract for mixed fleets.
  ScanRangeRequest req;
  req.start_key = 10;
  req.end_key = 500;
  req.predicate = common::ScanPredicate::KeyModEq(16, 1);
  req.projection.extents.push_back({0, 8});
  EXPECT_FALSE(req.NeedsV5());
  EXPECT_EQ(req.MinFrameVersion(), kScanRangeMinVersion);
  EXPECT_EQ(req.Encode(req.MinFrameVersion()),
            req.Encode(/*version=*/kScanRangeMinVersion));
  ScanRangeRequest out;
  uint16_t v = 0;
  ASSERT_TRUE(ScanRangeRequest::Decode(
                  Slice(req.Encode(req.MinFrameVersion())), &out, &v)
                  .ok());
  EXPECT_EQ(v, kScanRangeMinVersion);
  EXPECT_TRUE(out.extra_aggregates.empty());
}

TEST(RbioCodecTest, ScanRangeResponseExtraAggsRoundTrip) {
  ScanRangeResponse resp;
  resp.status = Status::OK();
  resp.complete = true;
  resp.aggregated = true;
  resp.agg.rows = 50;
  resp.agg.value = 111;
  common::AggState s1;
  s1.rows = 50;
  s1.value = 4242;
  common::AggState s2;
  s2.rows = 50;
  s2.value = 99;
  resp.extra_aggs.push_back(s1);
  resp.extra_aggs.push_back(s2);
  auto frame = std::make_shared<const std::string>(resp.Encode());
  ScanRangeResponse out;
  ASSERT_TRUE(ScanRangeResponse::Decode(frame, &out).ok());
  EXPECT_TRUE(out.aggregated);
  EXPECT_EQ(out.agg.rows, 50u);
  ASSERT_EQ(out.extra_aggs.size(), 2u);
  EXPECT_EQ(out.extra_aggs[0].value, 4242u);
  EXPECT_EQ(out.extra_aggs[1].value, 99u);
}

TEST(RbioCodecTest, OverloadedStatusSurvivesWire) {
  // kOverloaded is the scan-admission shed signal; it must round-trip so
  // the client planner can distinguish it from NotSupported (permanent)
  // and Unavailable (retried by transport).
  ScanRangeResponse resp;
  resp.status = Status::Overloaded("ps: scan admission shed");
  auto frame = std::make_shared<const std::string>(resp.Encode());
  ScanRangeResponse out;
  ASSERT_TRUE(ScanRangeResponse::Decode(frame, &out).ok());
  EXPECT_TRUE(out.status.IsOverloaded());
  EXPECT_FALSE(out.status.IsNotSupported());
}

// ------------------------------------------------------------ mock server

class MockServer : public RbioServer {
 public:
  MockServer(Simulator& sim, SimTime service_us,
             uint16_t max_version = kProtocolVersion)
      : sim_(sim), service_us_(service_us), max_version_(max_version) {}

  static storage::Page MakePage(PageId id, Lsn lsn) {
    storage::Page p;
    p.Format(id, storage::PageType::kBTreeLeaf);
    p.set_page_lsn(lsn);
    p.UpdateChecksum();
    return p;
  }

  Task<Result<std::string>> HandleRbio(const std::string& frame) override {
    handled_++;
    last_frame_ = frame;
    co_await sim::Delay(sim_, service_us_);
    if (fail_next_ > 0) {
      fail_next_--;
      co_return Result<std::string>(Status::Unavailable("mock outage"));
    }
    GetPageRequest req;
    GetPageBatchRequest batch;
    uint16_t version;
    if (GetPageBatchRequest::Decode(Slice(frame), &batch, &version,
                                    max_version_)
            .ok()) {
      batch_frames_++;
      GetPageBatchResponse bresp;
      bresp.status = Status::OK();
      for (const auto& e : batch.entries) {
        GetPageBatchResponse::Entry out;
        out.status = Status::OK();
        out.page = MakePage(e.page_id, e.min_lsn + 1);
        bresp.entries.push_back(std::move(out));
      }
      co_return bresp.Encode();
    }
    PageResponse resp;
    if (GetPageRequest::Decode(Slice(frame), &req, &version, max_version_)
            .ok()) {
      single_frames_++;
      resp.status = Status::OK();
      resp.pages.push_back(MakePage(req.page_id, req.min_lsn + 1));
    } else {
      // What a real pre-v3 server does with a frame it cannot decode.
      resp.status = Status::NotSupported("mock: unknown request");
    }
    co_return resp.Encode();
  }

  int handled_ = 0;
  int fail_next_ = 0;
  int batch_frames_ = 0;
  int single_frames_ = 0;
  std::string last_frame_;

 private:
  Simulator& sim_;
  SimTime service_us_;
  uint16_t max_version_;
};

// Issue `n` concurrent GetPage calls for distinct pages and wait for all.
Task<> ConcurrentGets(Simulator& s, RbioClient& client,
                      std::vector<Endpoint> eps, PageId first, int n,
                      int* ok_count) {
  sim::WaitGroup wg(s);
  for (int i = 0; i < n; i++) {
    wg.Add();
    Spawn(s, [](RbioClient* c, std::vector<Endpoint> e, PageId id,
                sim::WaitGroup* w, int* ok) -> Task<> {
      auto r = co_await c->GetPage(e, id, 10);
      if (r.ok() && r->page_id() == id) (*ok)++;
      w->Done();
    }(&client, eps, first + i, &wg, ok_count));
  }
  co_await wg.Wait();
}

TEST(RbioClientTest, RetriesTransientFailures) {
  Simulator s;
  MockServer server(s, 100);
  server.fail_next_ = 2;
  RbioClientOptions opts;
  RbioClient client(s, nullptr, opts);
  std::vector<Endpoint> eps{{&server, "m"}};
  RunSim(s, [&]() -> Task<> {
    auto r = co_await client.GetPage(eps, 7, 50);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) {
      EXPECT_EQ(r->page_id(), 7u);
    }
  });
  EXPECT_EQ(server.handled_, 3);  // 2 failures + 1 success
  EXPECT_EQ(client.retries(), 2u);
}

TEST(RbioClientTest, GivesUpAfterMaxAttempts) {
  Simulator s;
  MockServer server(s, 100);
  server.fail_next_ = 100;
  RbioClientOptions opts;
  opts.max_attempts = 3;
  RbioClient client(s, nullptr, opts);
  std::vector<Endpoint> eps{{&server, "m"}};
  RunSim(s, [&]() -> Task<> {
    auto r = co_await client.GetPage(eps, 7, 50);
    EXPECT_TRUE(r.status().IsUnavailable());
  });
  EXPECT_EQ(server.handled_, 3);
}

TEST(RbioClientTest, QosPrefersFasterReplica) {
  Simulator s;
  MockServer fast(s, 50);
  MockServer slow(s, 4000);
  RbioClient client(s, nullptr, {});
  std::vector<Endpoint> eps{{&slow, "slow"}, {&fast, "fast"}};
  RunSim(s, [&]() -> Task<> {
    for (int i = 0; i < 40; i++) {
      auto r = co_await client.GetPage(eps, i, 0);
      EXPECT_TRUE(r.ok());
    }
  });
  // After exploring both, the client should route nearly everything to
  // the fast replica.
  EXPECT_GT(fast.handled_, 30);
  EXPECT_LT(slow.handled_, 10);
  EXPECT_LT(client.EwmaLatencyUs("fast"), client.EwmaLatencyUs("slow"));
}

TEST(RbioClientTest, FailsOverToOtherReplicaOnOutage) {
  Simulator s;
  MockServer a(s, 50);
  MockServer b(s, 60);
  a.fail_next_ = 1000;  // replica A is down
  RbioClient client(s, nullptr, {});
  RunSim(s, [&]() -> Task<> {
    std::vector<Endpoint> eps{{&a, "a"}, {&b, "b"}};
    for (int i = 0; i < 20; i++) {
      auto r = co_await client.GetPage(eps, i, 0);
      EXPECT_TRUE(r.ok());
    }
  });
  EXPECT_GE(b.handled_, 20);
}

// --------------------------------------------------------------- batching

TEST(RbioBatchTest, ConcurrentMissesPackIntoOneFrame) {
  Simulator s;
  MockServer server(s, 100);
  RbioClientOptions opts;
  opts.max_batch = 16;
  RbioClient client(s, nullptr, opts);
  std::vector<Endpoint> eps{{&server, "m"}};
  int ok = 0;
  RunSim(s, [&]() -> Task<> {
    co_await ConcurrentGets(s, client, eps, 100, 8, &ok);
  });
  EXPECT_EQ(ok, 8);
  // All eight misses were issued in the same tick: one frame, one round
  // trip, seven saved.
  EXPECT_EQ(server.handled_, 1);
  EXPECT_EQ(server.batch_frames_, 1);
  EXPECT_EQ(client.batches_sent(), 1u);
  EXPECT_EQ(client.batched_pages(), 8u);
  EXPECT_EQ(client.round_trips_saved(), 7u);
  EXPECT_EQ(client.singles_sent(), 0u);
  EXPECT_EQ(client.batch_occupancy().max(), 8.0);
}

TEST(RbioBatchTest, BurstsAboveMaxBatchSplitIntoConcurrentFrames) {
  Simulator s;
  MockServer server(s, 100);
  RbioClientOptions opts;
  opts.max_batch = 16;
  RbioClient client(s, nullptr, opts);
  std::vector<Endpoint> eps{{&server, "m"}};
  int ok = 0;
  RunSim(s, [&]() -> Task<> {
    co_await ConcurrentGets(s, client, eps, 100, 40, &ok);
  });
  EXPECT_EQ(ok, 40);
  // 40 misses -> ceil(40/16) = 3 frames, all in flight concurrently.
  EXPECT_EQ(server.handled_, 3);
  EXPECT_EQ(client.batches_sent(), 3u);
  EXPECT_EQ(client.batched_pages(), 40u);
  EXPECT_EQ(client.round_trips_saved(), 37u);
}

TEST(RbioBatchTest, SamePageConcurrentMissesDeduped) {
  Simulator s;
  MockServer server(s, 100);
  RbioClient client(s, nullptr, {});
  std::vector<Endpoint> eps{{&server, "m"}};
  int ok = 0;
  RunSim(s, [&]() -> Task<> {
    sim::WaitGroup wg(s);
    for (int i = 0; i < 5; i++) {
      wg.Add();
      Spawn(s, [](RbioClient* c, std::vector<Endpoint> e,
                  sim::WaitGroup* w, int* okp) -> Task<> {
        auto r = co_await c->GetPage(e, 55, 10);
        if (r.ok() && r->page_id() == 55) (*okp)++;
        w->Done();
      }(&client, eps, &wg, &ok));
    }
    co_await wg.Wait();
  });
  EXPECT_EQ(ok, 5);
  // One wire request total: four callers shared the first one's entry.
  EXPECT_EQ(server.handled_, 1);
  EXPECT_EQ(client.batch_dedup_hits(), 4u);
  EXPECT_EQ(client.requests_sent(), 1u);
}

TEST(RbioBatchTest, LoneMissPaysNoBatchingLatency) {
  // A single miss must behave exactly like the unbatched client: same
  // frame on the wire (a per-page v2 single), same completion time.
  auto run_one = [](uint32_t max_batch, SimTime* finished,
                    std::string* frame) {
    Simulator s;
    MockServer server(s, 100);
    RbioClientOptions opts;
    opts.max_batch = max_batch;
    opts.network = sim::LatencyModel::Fixed(30);
    RbioClient client(s, nullptr, opts);
    std::vector<Endpoint> eps{{&server, "m"}};
    bool done = false;
    Spawn(s, Wrap([](RbioClient* c, std::vector<Endpoint> e) -> Task<> {
            auto r = co_await c->GetPage(e, 9, 10);
            EXPECT_TRUE(r.ok());
          }(&client, eps),
          &done));
    while (!done && s.Step()) {
    }
    *finished = s.now();
    *frame = server.last_frame_;
  };
  SimTime batched_t, unbatched_t;
  std::string batched_frame, unbatched_frame;
  run_one(16, &batched_t, &batched_frame);
  run_one(1, &unbatched_t, &unbatched_frame);
  EXPECT_EQ(batched_t, unbatched_t);
  // Byte-for-byte identical wire behavior.
  EXPECT_EQ(batched_frame, unbatched_frame);
  GetPageRequest expect;
  expect.page_id = 9;
  expect.min_lsn = 10;
  EXPECT_EQ(unbatched_frame, expect.Encode(kGetPageFrameVersion));
}

// ---------------------------------------------------------- mixed version

TEST(RbioMixedVersionTest, V3ClientFallsBackOnV2Server) {
  Simulator s;
  // A server still on protocol v2: batch frames are NotSupported.
  MockServer server(s, 100, /*max_version=*/2);
  RbioClient client(s, nullptr, {});
  std::vector<Endpoint> eps{{&server, "m"}};
  int ok = 0;
  RunSim(s, [&]() -> Task<> {
    co_await ConcurrentGets(s, client, eps, 100, 6, &ok);
  });
  EXPECT_EQ(ok, 6);  // negotiation is invisible to callers
  EXPECT_EQ(server.batch_frames_, 0);
  EXPECT_EQ(server.single_frames_, 6);
  EXPECT_EQ(client.batch_fallbacks(), 6u);
  EXPECT_EQ(client.batches_sent(), 1u);  // the one rejected probe

  // The rejection is memoized: the next burst goes straight to singles.
  int ok2 = 0;
  RunSim(s, [&]() -> Task<> {
    co_await ConcurrentGets(s, client, eps, 200, 6, &ok2);
  });
  EXPECT_EQ(ok2, 6);
  EXPECT_EQ(client.batches_sent(), 1u);  // unchanged
  EXPECT_EQ(server.single_frames_, 12);
}

TEST(RbioMixedVersionTest, V2ClientWorksAgainstV3Server) {
  Simulator s;
  MockServer server(s, 100);  // fully v3-capable
  RbioClientOptions opts;
  opts.protocol_version = 2;  // an old client
  RbioClient client(s, nullptr, opts);
  std::vector<Endpoint> eps{{&server, "m"}};
  int ok = 0;
  RunSim(s, [&]() -> Task<> {
    co_await ConcurrentGets(s, client, eps, 100, 6, &ok);
  });
  EXPECT_EQ(ok, 6);
  // A v2 client never emits batch frames, and the v3 server still
  // understands its v2 singles (kMinSupportedVersion <= 2).
  EXPECT_EQ(server.batch_frames_, 0);
  EXPECT_EQ(server.single_frames_, 6);
  EXPECT_EQ(client.batches_sent(), 0u);
  EXPECT_EQ(client.singles_sent(), 6u);
}

TEST(RbioMixedVersionTest, V4ScanFallsBackOnV3ServerAndMemoizes) {
  Simulator s;
  // A server still on protocol v3: kScanRange frames are NotSupported
  // (the MockServer answers undecodable frames exactly like a real
  // pre-v4 server: PageResponse{NotSupported}).
  MockServer server(s, 100, /*max_version=*/3);
  RbioClient client(s, nullptr, {});
  std::vector<Endpoint> eps{{&server, "m"}};
  ScanRangeRequest req;
  req.start_page = 2;
  RunSim(s, [&]() -> Task<> {
    auto r = co_await client.ScanRange(eps, req);
    // The client surfaces the rejection as a NotSupported error: the
    // caller's signal to degrade to the page-based plan.
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsNotSupported());
  });
  EXPECT_EQ(server.handled_, 1);
  EXPECT_EQ(client.scans_sent(), 1u);
  EXPECT_EQ(client.scan_fallbacks(), 1u);

  // The rejection is memoized: the next scan for the same endpoint set
  // short-circuits client-side, no wire traffic at all.
  RunSim(s, [&]() -> Task<> {
    auto r = co_await client.ScanRange(eps, req);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsNotSupported());
  });
  EXPECT_EQ(server.handled_, 1);  // unchanged
  EXPECT_EQ(client.scans_sent(), 1u);
  EXPECT_EQ(client.scan_fallbacks(), 2u);
}

TEST(RbioMixedVersionTest, V3ClientNeverEmitsScanFrames) {
  Simulator s;
  MockServer server(s, 100);  // fully v4-capable
  RbioClientOptions opts;
  opts.protocol_version = 3;  // an old client
  RbioClient client(s, nullptr, opts);
  std::vector<Endpoint> eps{{&server, "m"}};
  RunSim(s, [&]() -> Task<> {
    auto r = co_await client.ScanRange(eps, ScanRangeRequest{});
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsNotSupported());
    // ...and its GetPage traffic is untouched by the v4 upgrade.
    auto p = co_await client.GetPage(eps, 5, 0);
    EXPECT_TRUE(p.ok());
  });
  // The scan short-circuited client-side: zero scan frames on the wire.
  EXPECT_EQ(client.scans_sent(), 0u);
  EXPECT_EQ(client.scan_fallbacks(), 1u);
  EXPECT_EQ(server.single_frames_, 1);
}

TEST(RbioMixedVersionTest, V4ClientPagePathBytesUnchanged) {
  // The v3-fallback acceptance bar: a v4 client's page-based wire frames
  // must be byte-identical to a pre-v4 client's. Single GetPage frames
  // are pinned at kGetPageFrameVersion and responses at
  // kPageResponseVersion, so the upgrade is invisible on the page path.
  GetPageRequest req;
  req.page_id = 31;
  req.min_lsn = 64;
  // The client stamps min(protocol_version, kGetPageFrameVersion) on
  // every single-page frame; that pin must resolve below v4.
  std::string wire_req = req.Encode(
      std::min<uint16_t>(kProtocolVersion, kGetPageFrameVersion));
  EXPECT_EQ(wire_req, req.Encode(kGetPageFrameVersion));
  uint16_t req_version =
      static_cast<uint16_t>(static_cast<unsigned char>(wire_req[0])) |
      static_cast<uint16_t>(static_cast<unsigned char>(wire_req[1])) << 8;
  EXPECT_EQ(req_version, kGetPageFrameVersion);
  static_assert(kGetPageFrameVersion < kScanRangeMinVersion);
  static_assert(kPageResponseVersion < kScanRangeMinVersion);
  PageResponse resp;
  resp.status = Status::OK();
  std::string wire = resp.Encode();
  uint16_t wire_version =
      static_cast<uint16_t>(static_cast<unsigned char>(wire[0])) |
      static_cast<uint16_t>(static_cast<unsigned char>(wire[1])) << 8;
  EXPECT_EQ(wire_version, kPageResponseVersion);
}

// --------------------------------------------- end-to-end via Page Server

service::DeploymentOptions SmallDeployment() {
  service::DeploymentOptions o;
  o.partition_map.pages_per_partition = 4096;
  o.num_page_servers = 1;
  o.compute.mem_pages = 64;
  o.compute.ssd_pages = 128;
  return o;
}

Task<> Load(engine::Engine* e, uint64_t n) {
  for (uint64_t i = 0; i < n; i += 32) {
    auto txn = e->Begin();
    for (uint64_t k = i; k < i + 32; k++) {
      (void)e->Put(txn.get(), engine::MakeKey(1, k),
                   "val-" + std::to_string(k));
    }
    EXPECT_TRUE((co_await e->Commit(txn.get())).ok());
  }
}

TEST(RbioEndToEndTest, PageServerServesTypedRequests) {
  Simulator s;
  service::Deployment d(s, SmallDeployment());
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 500);
    co_await d.page_server(0)->applied_lsn().WaitFor(
        d.log_client().end_lsn());
    RbioClient client(s, nullptr, RbioClientOptions{});
    std::vector<Endpoint> eps{{d.page_server(0), "ps0"}};
    // Typed GetPage.
    auto page = co_await client.GetPage(eps, engine::kRootPageId, 0);
    EXPECT_TRUE(page.ok());
    // Typed GetPageRange: a scan-style multi-page read.
    auto range = co_await client.GetPageRange(eps, 1, 16, 0);
    EXPECT_TRUE(range.ok());
    EXPECT_GT(range->size(), 4u);
    for (auto& p : *range) {
      EXPECT_TRUE(p.VerifyChecksum().ok());
    }
  });
  d.Stop();
}

TEST(RbioEndToEndTest, BatchedGetsAgainstRealPageServer) {
  Simulator s;
  service::Deployment d(s, SmallDeployment());
  RbioClient client(s, nullptr, RbioClientOptions{});
  int ok = 0;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 2000);
    co_await d.page_server(0)->applied_lsn().WaitFor(
        d.log_client().end_lsn());
    std::vector<Endpoint> eps{{d.page_server(0), "ps0"}};
    co_await ConcurrentGets(s, client, eps, engine::kRootPageId, 8, &ok);
  });
  EXPECT_EQ(ok, 8);
  EXPECT_GE(client.batches_sent(), 1u);
  EXPECT_EQ(client.batch_fallbacks(), 0u);
  EXPECT_EQ(d.page_server(0)->batch_requests(), client.batches_sent());
  EXPECT_EQ(d.page_server(0)->batch_subrequests(), client.batched_pages());
  d.Stop();
}

TEST(RbioEndToEndTest, V3ClientDegradesAgainstV2PageServer) {
  Simulator s;
  service::DeploymentOptions o = SmallDeployment();
  o.page_server.rbio_max_version = 2;  // a not-yet-upgraded server
  service::Deployment d(s, o);
  RbioClient client(s, nullptr, RbioClientOptions{});
  int ok = 0;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 2000);
    co_await d.page_server(0)->applied_lsn().WaitFor(
        d.log_client().end_lsn());
    std::vector<Endpoint> eps{{d.page_server(0), "ps0"}};
    co_await ConcurrentGets(s, client, eps, engine::kRootPageId, 8, &ok);
  });
  EXPECT_EQ(ok, 8);  // served correctly despite the version mismatch
  EXPECT_EQ(d.page_server(0)->batch_requests(), 0u);
  EXPECT_EQ(client.batch_fallbacks(), 8u);
  d.Stop();
}

TEST(RbioEndToEndTest, ComputeSurvivesTransientPageServerFailures) {
  Simulator s;
  service::DeploymentOptions o = SmallDeployment();
  o.compute.mem_pages = 8;
  o.compute.ssd_pages = 16;  // tiny cache: refetches guaranteed
  service::Deployment d(s, o);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 2000);
    // Short transient failure bursts (below the retry budget) keep
    // hitting the server; reads must still succeed via RBIO retries.
    engine::Engine* e = d.primary_engine();
    auto txn = e->Begin(true);
    int bursts = 0;
    for (uint64_t k = 0; k < 2000; k += 7) {
      if (k % 210 == 0) {
        d.page_server(0)->InjectTransientFailures(2);
        bursts++;
      }
      auto v = co_await e->Get(txn.get(), engine::MakeKey(1, k));
      EXPECT_TRUE(v.ok()) << "key " << k << ": " << v.status().ToString();
    }
    EXPECT_GT(bursts, 5);
    (void)co_await e->Commit(txn.get());
  });
  EXPECT_GT(d.primary()->rbio_client().retries(), 0u);
  d.Stop();
}

TEST(RbioEndToEndTest, ReadaheadCutsRoundTrips) {
  auto fetches_with_readahead = [](uint32_t readahead) {
    Simulator s;
    service::DeploymentOptions o = SmallDeployment();
    o.compute.mem_pages = 8;
    o.compute.ssd_pages = 0;  // no RBPEX: rely on remote fetches
    o.compute.readahead_pages = readahead;
    // Isolate the GetPageRange effect: B+-tree scan readahead would cut
    // the readahead=0 baseline's round trips on its own.
    o.compute.scan_readahead = 0;
    service::Deployment d(s, o);
    uint64_t requests = 0;
    bool done = false;
    Spawn(s, Wrap([](service::Deployment* dp, uint64_t* reqs) -> Task<> {
            EXPECT_TRUE((co_await dp->Start()).ok());
            co_await Load(dp->primary_engine(), 3000);
            engine::Engine* e = dp->primary_engine();
            // Scan the whole table with a cold cache.
            auto txn = e->Begin(true);
            auto rows =
                co_await e->Scan(txn.get(), engine::MakeKey(1, 0), 3000);
            EXPECT_TRUE(rows.ok());
            if (rows.ok()) {
              EXPECT_EQ(rows->size(), 3000u);
            }
            (void)co_await e->Commit(txn.get());
            *reqs = dp->primary()->rbio_client().requests_sent();
          }(&d, &requests),
          &done));
    while (!done && s.Step()) {
    }
    d.Stop();
    return requests;
  };
  uint64_t without = fetches_with_readahead(0);
  uint64_t with = fetches_with_readahead(8);
  // One GetPageRange replaces several GetPage round trips.
  EXPECT_LT(with, without / 2);
}

}  // namespace
}  // namespace rbio
}  // namespace socrates
