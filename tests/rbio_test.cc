// RBIO protocol tests (§3.4): codec round trips, version negotiation,
// transient-failure retries, QoS replica selection, GetPageRange /
// readahead, and the end-to-end path through a real Page Server.

#include <gtest/gtest.h>

#include "rbio/rbio.h"
#include "service/deployment.h"

namespace socrates {
namespace rbio {
namespace {

using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  while (!done && s.Step()) {
  }
  ASSERT_TRUE(done);
}

// ------------------------------------------------------------------ codec

TEST(RbioCodecTest, GetPageRoundTrip) {
  GetPageRequest req;
  req.page_id = 42;
  req.min_lsn = 123456;
  GetPageRequest out;
  uint16_t version = 0;
  ASSERT_TRUE(GetPageRequest::Decode(Slice(req.Encode()), &out, &version)
                  .ok());
  EXPECT_EQ(version, kProtocolVersion);
  EXPECT_EQ(out.page_id, 42u);
  EXPECT_EQ(out.min_lsn, 123456u);
}

TEST(RbioCodecTest, GetPageRangeRoundTrip) {
  GetPageRangeRequest req;
  req.first_page = 100;
  req.count = 128;
  req.min_lsn = 777;
  GetPageRangeRequest out;
  uint16_t version = 0;
  ASSERT_TRUE(
      GetPageRangeRequest::Decode(Slice(req.Encode()), &out, &version)
          .ok());
  EXPECT_EQ(out.first_page, 100u);
  EXPECT_EQ(out.count, 128u);
  EXPECT_EQ(out.min_lsn, 777u);
}

TEST(RbioCodecTest, TypeConfusionRejected) {
  GetPageRequest get;
  GetPageRangeRequest range;
  uint16_t v;
  EXPECT_TRUE(GetPageRangeRequest::Decode(Slice(get.Encode()), &range, &v)
                  .IsInvalidArgument());
  EXPECT_TRUE(GetPageRequest::Decode(Slice(range.Encode()), &get, &v)
                  .IsInvalidArgument());
}

TEST(RbioCodecTest, VersionNegotiation) {
  GetPageRequest req;
  req.page_id = 1;
  // An ancient version is rejected...
  std::string old = req.Encode(/*version=*/0);
  GetPageRequest out;
  uint16_t v;
  EXPECT_TRUE(
      GetPageRequest::Decode(Slice(old), &out, &v).IsNotSupported());
  // ...a still-supported older version is accepted (auto-versioning).
  std::string v1 = req.Encode(kMinSupportedVersion);
  EXPECT_TRUE(GetPageRequest::Decode(Slice(v1), &out, &v).ok());
  EXPECT_EQ(v, kMinSupportedVersion);
  // ...a future version is rejected.
  std::string future = req.Encode(kProtocolVersion + 1);
  EXPECT_TRUE(
      GetPageRequest::Decode(Slice(future), &out, &v).IsNotSupported());
}

TEST(RbioCodecTest, ResponseRoundTripWithPages) {
  PageResponse resp;
  resp.status = Status::OK();
  for (PageId id : {5u, 9u}) {
    storage::Page p;
    p.Format(id, storage::PageType::kBTreeLeaf);
    p.UpdateChecksum();
    resp.pages.push_back(std::move(p));
  }
  PageResponse out;
  ASSERT_TRUE(PageResponse::Decode(Slice(resp.Encode()), &out).ok());
  EXPECT_TRUE(out.status.ok());
  ASSERT_EQ(out.pages.size(), 2u);
  EXPECT_EQ(out.pages[0].page_id(), 5u);
  EXPECT_EQ(out.pages[1].page_id(), 9u);
  EXPECT_TRUE(out.pages[1].VerifyChecksum().ok());
}

TEST(RbioCodecTest, ErrorStatusSurvivesWire) {
  PageResponse resp;
  resp.status = Status::NotFound("no such page");
  PageResponse out;
  ASSERT_TRUE(PageResponse::Decode(Slice(resp.Encode()), &out).ok());
  EXPECT_TRUE(out.status.IsNotFound());
  EXPECT_EQ(out.status.message(), "no such page");
}

TEST(RbioCodecTest, TruncatedFramesRejected) {
  GetPageRequest req;
  req.page_id = 7;
  std::string wire = req.Encode();
  GetPageRequest out;
  uint16_t v;
  for (size_t cut : {size_t{1}, size_t{3}, wire.size() - 1}) {
    EXPECT_FALSE(
        GetPageRequest::Decode(Slice(wire.data(), cut), &out, &v).ok());
  }
}

// ------------------------------------------------------------ mock server

class MockServer : public RbioServer {
 public:
  MockServer(Simulator& sim, SimTime service_us)
      : sim_(sim), service_us_(service_us) {}

  Task<Result<std::string>> HandleRbio(std::string frame) override {
    handled_++;
    co_await sim::Delay(sim_, service_us_);
    if (fail_next_ > 0) {
      fail_next_--;
      co_return Result<std::string>(Status::Unavailable("mock outage"));
    }
    GetPageRequest req;
    uint16_t version;
    PageResponse resp;
    if (GetPageRequest::Decode(Slice(frame), &req, &version).ok()) {
      storage::Page p;
      p.Format(req.page_id, storage::PageType::kBTreeLeaf);
      p.set_page_lsn(req.min_lsn + 1);
      p.UpdateChecksum();
      resp.status = Status::OK();
      resp.pages.push_back(std::move(p));
    } else {
      resp.status = Status::NotSupported("mock: unknown request");
    }
    co_return resp.Encode();
  }

  int handled_ = 0;
  int fail_next_ = 0;

 private:
  Simulator& sim_;
  SimTime service_us_;
};

TEST(RbioClientTest, RetriesTransientFailures) {
  Simulator s;
  MockServer server(s, 100);
  server.fail_next_ = 2;
  RbioClientOptions opts;
  RbioClient client(s, nullptr, opts);
  std::vector<Endpoint> eps{{&server, "m"}};
  RunSim(s, [&]() -> Task<> {
    auto r = co_await client.GetPage(eps, 7, 50);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) {
      EXPECT_EQ(r->page_id(), 7u);
    }
  });
  EXPECT_EQ(server.handled_, 3);  // 2 failures + 1 success
  EXPECT_EQ(client.retries(), 2u);
}

TEST(RbioClientTest, GivesUpAfterMaxAttempts) {
  Simulator s;
  MockServer server(s, 100);
  server.fail_next_ = 100;
  RbioClientOptions opts;
  opts.max_attempts = 3;
  RbioClient client(s, nullptr, opts);
  std::vector<Endpoint> eps{{&server, "m"}};
  RunSim(s, [&]() -> Task<> {
    auto r = co_await client.GetPage(eps, 7, 50);
    EXPECT_TRUE(r.status().IsUnavailable());
  });
  EXPECT_EQ(server.handled_, 3);
}

TEST(RbioClientTest, QosPrefersFasterReplica) {
  Simulator s;
  MockServer fast(s, 50);
  MockServer slow(s, 4000);
  RbioClient client(s, nullptr, {});
  std::vector<Endpoint> eps{{&slow, "slow"}, {&fast, "fast"}};
  RunSim(s, [&]() -> Task<> {
    for (int i = 0; i < 40; i++) {
      auto r = co_await client.GetPage(eps, i, 0);
      EXPECT_TRUE(r.ok());
    }
  });
  // After exploring both, the client should route nearly everything to
  // the fast replica.
  EXPECT_GT(fast.handled_, 30);
  EXPECT_LT(slow.handled_, 10);
  EXPECT_LT(client.EwmaLatencyUs("fast"), client.EwmaLatencyUs("slow"));
}

TEST(RbioClientTest, FailsOverToOtherReplicaOnOutage) {
  Simulator s;
  MockServer a(s, 50);
  MockServer b(s, 60);
  a.fail_next_ = 1000;  // replica A is down
  RbioClient client(s, nullptr, {});
  RunSim(s, [&]() -> Task<> {
    std::vector<Endpoint> eps{{&a, "a"}, {&b, "b"}};
    for (int i = 0; i < 20; i++) {
      auto r = co_await client.GetPage(eps, i, 0);
      EXPECT_TRUE(r.ok());
    }
  });
  EXPECT_GE(b.handled_, 20);
}

// --------------------------------------------- end-to-end via Page Server

service::DeploymentOptions SmallDeployment() {
  service::DeploymentOptions o;
  o.partition_map.pages_per_partition = 4096;
  o.num_page_servers = 1;
  o.compute.mem_pages = 64;
  o.compute.ssd_pages = 128;
  return o;
}

Task<> Load(engine::Engine* e, uint64_t n) {
  for (uint64_t i = 0; i < n; i += 32) {
    auto txn = e->Begin();
    for (uint64_t k = i; k < i + 32; k++) {
      (void)e->Put(txn.get(), engine::MakeKey(1, k),
                   "val-" + std::to_string(k));
    }
    EXPECT_TRUE((co_await e->Commit(txn.get())).ok());
  }
}

TEST(RbioEndToEndTest, PageServerServesTypedRequests) {
  Simulator s;
  service::Deployment d(s, SmallDeployment());
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 500);
    co_await d.page_server(0)->applied_lsn().WaitFor(
        d.log_client().end_lsn());
    RbioClient client(s, nullptr, RbioClientOptions{});
    std::vector<Endpoint> eps{{d.page_server(0), "ps0"}};
    // Typed GetPage.
    auto page = co_await client.GetPage(eps, engine::kRootPageId, 0);
    EXPECT_TRUE(page.ok());
    // Typed GetPageRange: a scan-style multi-page read.
    auto range = co_await client.GetPageRange(eps, 1, 16, 0);
    EXPECT_TRUE(range.ok());
    EXPECT_GT(range->size(), 4u);
    for (auto& p : *range) {
      EXPECT_TRUE(p.VerifyChecksum().ok());
    }
  });
  d.Stop();
}

TEST(RbioEndToEndTest, ComputeSurvivesTransientPageServerFailures) {
  Simulator s;
  service::DeploymentOptions o = SmallDeployment();
  o.compute.mem_pages = 8;
  o.compute.ssd_pages = 16;  // tiny cache: refetches guaranteed
  service::Deployment d(s, o);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 2000);
    // Short transient failure bursts (below the retry budget) keep
    // hitting the server; reads must still succeed via RBIO retries.
    engine::Engine* e = d.primary_engine();
    auto txn = e->Begin(true);
    int bursts = 0;
    for (uint64_t k = 0; k < 2000; k += 7) {
      if (k % 210 == 0) {
        d.page_server(0)->InjectTransientFailures(2);
        bursts++;
      }
      auto v = co_await e->Get(txn.get(), engine::MakeKey(1, k));
      EXPECT_TRUE(v.ok()) << "key " << k << ": " << v.status().ToString();
    }
    EXPECT_GT(bursts, 5);
    (void)co_await e->Commit(txn.get());
  });
  EXPECT_GT(d.primary()->rbio_client().retries(), 0u);
  d.Stop();
}

TEST(RbioEndToEndTest, ReadaheadCutsRoundTrips) {
  auto fetches_with_readahead = [](uint32_t readahead) {
    Simulator s;
    service::DeploymentOptions o = SmallDeployment();
    o.compute.mem_pages = 8;
    o.compute.ssd_pages = 0;  // no RBPEX: rely on remote fetches
    o.compute.readahead_pages = readahead;
    service::Deployment d(s, o);
    uint64_t requests = 0;
    bool done = false;
    Spawn(s, Wrap([](service::Deployment* dp, uint64_t* reqs) -> Task<> {
            EXPECT_TRUE((co_await dp->Start()).ok());
            co_await Load(dp->primary_engine(), 3000);
            engine::Engine* e = dp->primary_engine();
            // Scan the whole table with a cold cache.
            auto txn = e->Begin(true);
            auto rows =
                co_await e->Scan(txn.get(), engine::MakeKey(1, 0), 3000);
            EXPECT_TRUE(rows.ok());
            if (rows.ok()) {
              EXPECT_EQ(rows->size(), 3000u);
            }
            (void)co_await e->Commit(txn.get());
            *reqs = dp->primary()->rbio_client().requests_sent();
          }(&d, &requests),
          &done));
    while (!done && s.Step()) {
    }
    d.Stop();
    return requests;
  };
  uint64_t without = fetches_with_readahead(0);
  uint64_t with = fetches_with_readahead(8);
  // One GetPageRange replaces several GetPage round trips.
  EXPECT_LT(with, without / 2);
}

}  // namespace
}  // namespace rbio
}  // namespace socrates
