// Engine tests: version chains, B-tree page layout, log record codec and
// idempotent redo, buffer pool + RBPEX behaviour, B-tree operations with
// splits (differential-tested against std::map), snapshot isolation,
// conflict detection, and redo-applier replication.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "engine/btree.h"
#include "engine/btree_page.h"
#include "engine/buffer_pool.h"
#include "engine/log_record.h"
#include "engine/log_sink.h"
#include "engine/redo.h"
#include "engine/txn_engine.h"
#include "engine/version.h"

namespace socrates {
namespace engine {
namespace {

using sim::Simulator;
using sim::Spawn;
using sim::Task;

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  Spawn(s, fn());
  s.Run();
}

// ----------------------------------------------------------- VersionChain

TEST(VersionChainTest, EncodeDecodeRoundTrip) {
  VersionChain c;
  c.Push(10, false, Slice("v1"));
  c.Push(20, false, Slice("v2"));
  c.Push(30, true, Slice(""));
  VersionChain d;
  ASSERT_TRUE(VersionChain::Decode(Slice(c.Encode()), &d));
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d.versions()[0].commit_ts, 30u);
  EXPECT_TRUE(d.versions()[0].tombstone);
  EXPECT_EQ(d.versions()[2].payload, "v1");
}

TEST(VersionChainTest, VisibilityRules) {
  VersionChain c;
  c.Push(10, false, Slice("v1"));
  c.Push(20, false, Slice("v2"));
  EXPECT_EQ(c.VisibleAt(5), nullptr);        // before creation
  EXPECT_EQ(c.VisibleAt(10)->payload, "v1");  // exactly at commit
  EXPECT_EQ(c.VisibleAt(15)->payload, "v1");
  EXPECT_EQ(c.VisibleAt(20)->payload, "v2");
  EXPECT_EQ(c.VisibleAt(1000)->payload, "v2");
}

TEST(VersionChainTest, TombstoneVisibility) {
  VersionChain c;
  c.Push(10, false, Slice("alive"));
  c.Push(20, true, Slice(""));
  EXPECT_FALSE(c.VisibleAt(15)->tombstone);
  EXPECT_TRUE(c.VisibleAt(25)->tombstone);
}

TEST(VersionChainTest, TrimKeepsNeededVersions) {
  VersionChain c;
  for (Timestamp ts = 10; ts <= 50; ts += 10) {
    c.Push(ts, false, Slice("v"));
  }
  c.Trim(25);  // oldest active snapshot is 25: needs version at ts=20
  ASSERT_EQ(c.size(), 4u);  // 50,40,30,20 retained; 10 dropped
  EXPECT_EQ(c.versions().back().commit_ts, 20u);
  c.Cap(2);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.versions()[0].commit_ts, 50u);
}

TEST(VersionChainTest, DecodeRejectsGarbage) {
  VersionChain d;
  EXPECT_FALSE(VersionChain::Decode(Slice("zz"), &d));
  std::string half;
  PutFixed16(&half, 3);  // claims 3 versions, provides none
  EXPECT_FALSE(VersionChain::Decode(Slice(half), &d));
}

// -------------------------------------------------------------- BTreePage

TEST(BTreePageTest, FormatAndFences) {
  storage::Page page;
  BTreePage::Format(&page, 7, 0, 100, 200, 9);
  BTreePage bp(&page);
  EXPECT_TRUE(bp.is_leaf());
  EXPECT_EQ(bp.low_fence(), 100u);
  EXPECT_EQ(bp.high_fence(), 200u);
  EXPECT_EQ(bp.right_sibling(), 9u);
  EXPECT_TRUE(bp.CoversKey(100));
  EXPECT_TRUE(bp.CoversKey(199));
  EXPECT_FALSE(bp.CoversKey(200));
  EXPECT_FALSE(bp.CoversKey(99));
}

TEST(BTreePageTest, SortedInsertAndLookup) {
  storage::Page page;
  BTreePage::Format(&page, 1, 0, kMinKey, kMaxKey, kInvalidPageId);
  BTreePage bp(&page);
  for (uint64_t k : {50, 10, 30, 20, 40}) {
    ASSERT_TRUE(bp.LeafInsert(k, Slice("v" + std::to_string(k))).ok());
  }
  ASSERT_EQ(bp.slot_count(), 5);
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(bp.KeyAt(i), static_cast<uint64_t>((i + 1) * 10));
  }
  EXPECT_EQ(bp.LeafValueAt(bp.FindSlot(30)).ToString(), "v30");
  EXPECT_EQ(bp.FindSlot(35), -1);
  EXPECT_TRUE(bp.LeafInsert(30, Slice("dup")).IsInvalidArgument());
}

TEST(BTreePageTest, UpdateGrowShrink) {
  storage::Page page;
  BTreePage::Format(&page, 1, 0, kMinKey, kMaxKey, kInvalidPageId);
  BTreePage bp(&page);
  ASSERT_TRUE(bp.LeafInsert(1, Slice("short")).ok());
  ASSERT_TRUE(bp.LeafInsert(2, Slice("other")).ok());
  ASSERT_TRUE(bp.LeafUpdate(1, Slice(std::string(500, 'x'))).ok());
  EXPECT_EQ(bp.LeafValueAt(bp.FindSlot(1)).size(), 500u);
  EXPECT_EQ(bp.LeafValueAt(bp.FindSlot(2)).ToString(), "other");
  ASSERT_TRUE(bp.LeafUpdate(1, Slice("y")).ok());
  EXPECT_EQ(bp.LeafValueAt(bp.FindSlot(1)).ToString(), "y");
  EXPECT_TRUE(bp.LeafUpdate(99, Slice("z")).IsNotFound());
}

TEST(BTreePageTest, DeleteAndCompaction) {
  storage::Page page;
  BTreePage::Format(&page, 1, 0, kMinKey, kMaxKey, kInvalidPageId);
  BTreePage bp(&page);
  std::string value(700, 'a');
  // Fill the page.
  uint64_t k = 0;
  while (bp.CanHostLeafInsert(static_cast<uint32_t>(value.size()))) {
    ASSERT_TRUE(bp.LeafInsert(k++, Slice(value)).ok());
  }
  uint64_t filled = k;
  EXPECT_GT(filled, 5u);
  // Delete every other key; inserts must succeed again via compaction.
  for (uint64_t d = 0; d < filled; d += 2) {
    ASSERT_TRUE(bp.LeafDelete(d).ok());
  }
  EXPECT_TRUE(bp.CanHostLeafInsert(static_cast<uint32_t>(value.size())));
  ASSERT_TRUE(bp.LeafInsert(1000, Slice(value)).ok());
  EXPECT_EQ(bp.LeafValueAt(bp.FindSlot(1000)).ToString(), value);
  EXPECT_EQ(bp.LeafValueAt(bp.FindSlot(1)).ToString(), value);
}

TEST(BTreePageTest, InteriorChildNavigation) {
  storage::Page page;
  BTreePage::Format(&page, 1, 1, kMinKey, kMaxKey, kInvalidPageId);
  BTreePage bp(&page);
  ASSERT_TRUE(bp.InteriorInsert(kMinKey, 10).ok());
  ASSERT_TRUE(bp.InteriorInsert(100, 11).ok());
  ASSERT_TRUE(bp.InteriorInsert(200, 12).ok());
  EXPECT_FALSE(bp.is_leaf());
  EXPECT_EQ(bp.ChildAt(bp.FindChildSlot(0)), 10u);
  EXPECT_EQ(bp.ChildAt(bp.FindChildSlot(99)), 10u);
  EXPECT_EQ(bp.ChildAt(bp.FindChildSlot(100)), 11u);
  EXPECT_EQ(bp.ChildAt(bp.FindChildSlot(150)), 11u);
  EXPECT_EQ(bp.ChildAt(bp.FindChildSlot(5000)), 12u);
}

// ------------------------------------------------------------- LogRecord

TEST(LogRecordTest, CodecRoundTripAllTypes) {
  std::vector<LogRecord> recs;
  {
    LogRecord r;
    r.type = LogRecordType::kPageFormat;
    r.page_id = 3;
    r.page_type = 1;
    r.level = 2;
    r.low_fence = 5;
    r.high_fence = 500;
    r.right_sibling = 9;
    recs.push_back(r);
  }
  {
    LogRecord r;
    r.type = LogRecordType::kLeafInsert;
    r.txn_id = 77;
    r.page_id = 4;
    r.key = 42;
    r.value = "chainbytes";
    recs.push_back(r);
  }
  {
    LogRecord r;
    r.type = LogRecordType::kLeafDelete;
    r.page_id = 4;
    r.key = 42;
    recs.push_back(r);
  }
  {
    LogRecord r;
    r.type = LogRecordType::kInteriorInsert;
    r.page_id = 1;
    r.key = 9;
    r.child = 12;
    recs.push_back(r);
  }
  {
    LogRecord r;
    r.type = LogRecordType::kTxnCommit;
    r.txn_id = 5;
    r.commit_ts = 99;
    recs.push_back(r);
  }
  {
    LogRecord r;
    r.type = LogRecordType::kCheckpoint;
    r.commit_ts = 100;
    r.next_page_id = 17;
    recs.push_back(r);
  }
  for (const auto& r : recs) {
    LogRecord d;
    ASSERT_TRUE(LogRecord::Decode(Slice(r.Encode()), &d).ok());
    EXPECT_EQ(d.type, r.type);
    EXPECT_EQ(d.txn_id, r.txn_id);
    EXPECT_EQ(d.page_id, r.page_id);
    EXPECT_EQ(d.key, r.key);
    EXPECT_EQ(d.value, r.value);
    EXPECT_EQ(d.child, r.child);
    EXPECT_EQ(d.commit_ts, r.commit_ts);
    EXPECT_EQ(d.next_page_id, r.next_page_id);
  }
}

TEST(LogRecordTest, DecodeRejectsTruncation) {
  LogRecord r;
  r.type = LogRecordType::kLeafInsert;
  r.key = 1;
  r.value = "abcdef";
  std::string enc = r.Encode();
  LogRecord d;
  EXPECT_TRUE(
      LogRecord::Decode(Slice(enc.data(), enc.size() - 3), &d)
          .IsCorruption());
  EXPECT_TRUE(LogRecord::Decode(Slice(""), &d).IsCorruption());
}

TEST(LogRecordTest, RedoIsIdempotent) {
  storage::Page page;
  BTreePage::Format(&page, 5, 0, kMinKey, kMaxKey, kInvalidPageId);
  page.set_page_lsn(100);

  LogRecord ins;
  ins.type = LogRecordType::kLeafInsert;
  ins.page_id = 5;
  ins.key = 7;
  ins.value = "val";
  // LSN 90 <= pageLSN 100: must be skipped.
  ASSERT_TRUE(ApplyToPage(ins, 90, &page).ok());
  BTreePage bp(&page);
  EXPECT_EQ(bp.FindSlot(7), -1);
  // LSN 110: applied, pageLSN advances.
  ASSERT_TRUE(ApplyToPage(ins, 110, &page).ok());
  EXPECT_GE(bp.FindSlot(7), 0);
  EXPECT_EQ(page.page_lsn(), 110u);
  // Re-applying the same record is a no-op, not a duplicate-key error.
  ASSERT_TRUE(ApplyToPage(ins, 110, &page).ok());
  EXPECT_EQ(bp.slot_count(), 1);
}

TEST(LogRecordTest, ForEachRecordWalksFrames) {
  std::string stream;
  for (int i = 0; i < 3; i++) {
    LogRecord r;
    r.type = LogRecordType::kTxnCommit;
    r.commit_ts = i + 1;
    FrameRecord(&stream, Slice(r.Encode()));
  }
  std::vector<Lsn> lsns;
  std::vector<Timestamp> tss;
  ASSERT_TRUE(ForEachRecord(Slice(stream), 16, [&](Lsn lsn, Slice p) {
                lsns.push_back(lsn);
                LogRecord d;
                EXPECT_TRUE(LogRecord::Decode(p, &d).ok());
                tss.push_back(d.commit_ts);
                return true;
              }).ok());
  ASSERT_EQ(lsns.size(), 3u);
  EXPECT_EQ(lsns[0], 16u);
  EXPECT_EQ(tss, (std::vector<Timestamp>{1, 2, 3}));
  // Partial trailing frame is end-of-stream, not corruption.
  std::string truncated = stream.substr(0, stream.size() - 5);
  int count = 0;
  ASSERT_TRUE(ForEachRecord(Slice(truncated), 16, [&](Lsn, Slice) {
                count++;
                return true;
              }).ok());
  EXPECT_EQ(count, 2);
}

// ------------------------------------------------------------ BufferPool

// A fetcher serving formatted pages from an in-memory "remote" map.
class MapFetcher : public PageFetcher {
 public:
  explicit MapFetcher(Simulator& sim) : sim_(sim) {}

  Task<Result<storage::Page>> FetchPage(PageId page_id) override {
    co_await sim::Delay(sim_, 300);  // remote round trip
    fetches_++;
    auto it = pages_.find(page_id);
    if (it == pages_.end()) {
      co_return Result<storage::Page>(Status::NotFound("no such page"));
    }
    co_return it->second;
  }

  std::map<PageId, storage::Page> pages_;
  int fetches_ = 0;

 private:
  Simulator& sim_;
};

storage::Page MakeLeafPage(PageId id, Lsn lsn) {
  storage::Page p;
  BTreePage::Format(&p, id, 0, kMinKey, kMaxKey, kInvalidPageId);
  p.set_page_lsn(lsn);
  return p;
}

TEST(BufferPoolTest, MissThenMemHit) {
  Simulator s;
  MapFetcher fetcher(s);
  fetcher.pages_[7] = MakeLeafPage(7, 50);
  BufferPoolOptions opts;
  opts.mem_pages = 4;
  BufferPool pool(s, opts, &fetcher);
  RunSim(s, [&]() -> Task<> {
    auto r1 = co_await pool.GetPage(7);
    EXPECT_TRUE(r1.ok());
    EXPECT_EQ(r1->page()->page_id(), 7u);
    auto r2 = co_await pool.GetPage(7);
    EXPECT_TRUE(r2.ok());
  });
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().mem_hits, 1u);
  EXPECT_EQ(fetcher.fetches_, 1);
}

TEST(BufferPoolTest, ConcurrentMissesDeduplicated) {
  Simulator s;
  MapFetcher fetcher(s);
  fetcher.pages_[7] = MakeLeafPage(7, 50);
  BufferPoolOptions opts;
  BufferPool pool(s, opts, &fetcher);
  int done = 0;
  for (int i = 0; i < 5; i++) {
    Spawn(s, [](BufferPool& p, int* d) -> Task<> {
      auto r = co_await p.GetPage(7);
      EXPECT_TRUE(r.ok());
      (*d)++;
    }(pool, &done));
  }
  s.Run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(fetcher.fetches_, 1);  // one remote fetch for five callers
}

TEST(BufferPoolTest, EvictionToSsdAndPromotion) {
  Simulator s;
  MapFetcher fetcher(s);
  for (PageId id = 1; id <= 10; id++) {
    fetcher.pages_[id] = MakeLeafPage(id, 10 * id);
  }
  BufferPoolOptions opts;
  opts.mem_pages = 3;
  opts.ssd_pages = 10;
  BufferPool pool(s, opts, &fetcher);
  RunSim(s, [&]() -> Task<> {
    for (PageId id = 1; id <= 10; id++) {
      auto r = co_await pool.GetPage(id);
      EXPECT_TRUE(r.ok());
    }
    // Pages 1..7 must have spilled to SSD; re-reading one is an SSD hit.
    auto r = co_await pool.GetPage(1);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->page()->page_id(), 1u);
  });
  EXPECT_EQ(pool.stats().ssd_hits, 1u);
  EXPECT_EQ(fetcher.fetches_, 10);  // no refetch for the SSD hit
}

TEST(BufferPoolTest, EvictionCallbackReportsDepartures) {
  Simulator s;
  MapFetcher fetcher(s);
  for (PageId id = 1; id <= 6; id++) {
    fetcher.pages_[id] = MakeLeafPage(id, 100 + id);
  }
  BufferPoolOptions opts;
  opts.mem_pages = 2;
  opts.ssd_pages = 2;
  BufferPool pool(s, opts, &fetcher);
  std::map<PageId, Lsn> evicted;
  pool.set_eviction_callback(
      [&](PageId id, Lsn lsn) { evicted[id] = lsn; });
  RunSim(s, [&]() -> Task<> {
    for (PageId id = 1; id <= 6; id++) {
      auto r = co_await pool.GetPage(id);
      EXPECT_TRUE(r.ok());
    }
  });
  // 6 pages through mem(2)+ssd(2): at least two fully evicted with LSNs.
  EXPECT_GE(evicted.size(), 2u);
  for (auto& [id, lsn] : evicted) {
    EXPECT_EQ(lsn, 100 + id);
  }
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  Simulator s;
  MapFetcher fetcher(s);
  for (PageId id = 1; id <= 5; id++) {
    fetcher.pages_[id] = MakeLeafPage(id, id);
  }
  BufferPoolOptions opts;
  opts.mem_pages = 2;
  BufferPool pool(s, opts, &fetcher);
  RunSim(s, [&]() -> Task<> {
    auto pinned = co_await pool.GetPage(1);
    EXPECT_TRUE(pinned.ok());
    storage::Page* raw = pinned->page();
    for (PageId id = 2; id <= 5; id++) {
      auto r = co_await pool.GetPage(id);
      EXPECT_TRUE(r.ok());
    }
    // Page 1 is still valid and identical through the pin.
    EXPECT_EQ(raw->page_id(), 1u);
    auto again = co_await pool.GetPage(1);
    EXPECT_TRUE(again.ok());
    EXPECT_EQ(again->page(), raw);  // same frame, not refetched
  });
  EXPECT_EQ(fetcher.fetches_, 5);
}

TEST(BufferPoolTest, RbpexSurvivesCrashAndRecovers) {
  Simulator s;
  MapFetcher fetcher(s);
  for (PageId id = 1; id <= 8; id++) {
    fetcher.pages_[id] = MakeLeafPage(id, 10 + id);
  }
  BufferPoolOptions opts;
  opts.mem_pages = 2;
  opts.ssd_pages = 8;
  opts.ssd_recoverable = true;
  BufferPool pool(s, opts, &fetcher);
  RunSim(s, [&]() -> Task<> {
    for (PageId id = 1; id <= 8; id++) {
      (void)co_await pool.GetPage(id);
    }
  });
  int fetches_before = fetcher.fetches_;
  pool.Crash();
  size_t recovered = 0;
  RunSim(s, [&]() -> Task<> {
    auto r = co_await pool.Recover(/*durable_end_lsn=*/1000);
    EXPECT_TRUE(r.ok());
    recovered = *r;
    // Reading a recovered page hits SSD, not the remote fetcher.
    auto p = co_await pool.GetPage(3);
    EXPECT_TRUE(p.ok());
    EXPECT_EQ(p->page()->page_lsn(), 13u);
  });
  EXPECT_GE(recovered, 6u);
  EXPECT_EQ(fetcher.fetches_, fetches_before);  // warm cache: no refetch
}

TEST(BufferPoolTest, RecoverDiscardsUnhardenedPages) {
  Simulator s;
  MapFetcher fetcher(s);
  fetcher.pages_[1] = MakeLeafPage(1, 100);
  fetcher.pages_[2] = MakeLeafPage(2, 999);  // "speculative" page
  BufferPoolOptions opts;
  opts.mem_pages = 1;
  opts.ssd_pages = 4;
  BufferPool pool(s, opts, &fetcher);
  RunSim(s, [&]() -> Task<> {
    (void)co_await pool.GetPage(1);
    (void)co_await pool.GetPage(2);
    (void)co_await pool.GetPage(1);  // force 2 out of mem too
  });
  pool.Crash();
  RunSim(s, [&]() -> Task<> {
    (void)co_await pool.Recover(/*durable_end_lsn=*/500);
  });
  // Page 2 (LSN 999 > 500) must have been discarded.
  EXPECT_FALSE(pool.Contains(2));
}

TEST(BufferPoolTest, NonRecoverableBpeLosesSsdOnCrash) {
  Simulator s;
  MapFetcher fetcher(s);
  for (PageId id = 1; id <= 4; id++) {
    fetcher.pages_[id] = MakeLeafPage(id, id);
  }
  BufferPoolOptions opts;
  opts.mem_pages = 1;
  opts.ssd_pages = 4;
  opts.ssd_recoverable = false;
  BufferPool pool(s, opts, &fetcher);
  RunSim(s, [&]() -> Task<> {
    for (PageId id = 1; id <= 4; id++) {
      (void)co_await pool.GetPage(id);
    }
  });
  pool.Crash();
  EXPECT_EQ(pool.ssd_resident(), 0u);
  RunSim(s, [&]() -> Task<> {
    auto r = co_await pool.Recover(1000);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(*r, 0u);
  });
}

TEST(BufferPoolTest, DirtyTracking) {
  Simulator s;
  MapFetcher fetcher(s);
  fetcher.pages_[1] = MakeLeafPage(1, 5);
  fetcher.pages_[2] = MakeLeafPage(2, 5);
  BufferPoolOptions opts;
  BufferPool pool(s, opts, &fetcher);
  RunSim(s, [&]() -> Task<> {
    auto a = co_await pool.GetPage(1);
    auto b = co_await pool.GetPage(2);
    a.value().MarkDirty();
  });
  auto dirty = pool.DirtyPages();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 1u);
  pool.ClearDirty(1);
  EXPECT_TRUE(pool.DirtyPages().empty());
}

// ------------------------------------------------------- BTree end-to-end

struct TreeFixture {
  Simulator sim;
  MemLogSink sink{sim};
  BufferPoolOptions opts;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<BTree> tree;

  explicit TreeFixture(size_t mem_pages = 4096) {
    opts.mem_pages = mem_pages;
    pool = std::make_unique<BufferPool>(sim, opts, nullptr);
    tree = std::make_unique<BTree>(sim, pool.get(), &sink);
    Spawn(sim, [](BTree* t) -> Task<> {
      Status s = co_await t->Create();
      EXPECT_TRUE(s.ok());
    }(tree.get()));
    sim.Run();
  }
};

VersionChain OneVersion(Timestamp ts, const std::string& v) {
  VersionChain c;
  c.Push(ts, false, Slice(v));
  return c;
}

TEST(BTreeTest, InsertAndFind) {
  TreeFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    EXPECT_TRUE(
        (co_await f.tree->Write(1, 42, OneVersion(1, "hello"))).ok());
    auto r = co_await f.tree->Find(42);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->Newest()->payload, "hello");
    auto miss = co_await f.tree->Find(43);
    EXPECT_TRUE(miss.status().IsNotFound());
  });
}

TEST(BTreeTest, UpdateReplacesChain) {
  TreeFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    (void)co_await f.tree->Write(1, 5, OneVersion(1, "a"));
    VersionChain c2 = OneVersion(1, "a");
    c2.Push(2, false, Slice("b"));
    (void)co_await f.tree->Write(1, 5, c2);
    auto r = co_await f.tree->Find(5);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 2u);
    EXPECT_EQ(r->Newest()->payload, "b");
  });
}

TEST(BTreeTest, ManyInsertsForceSplitsAndStayFindable) {
  TreeFixture f;
  const int kN = 3000;
  RunSim(f.sim, [&]() -> Task<> {
    Random rng(7);
    std::vector<uint64_t> keys;
    for (int i = 0; i < kN; i++) keys.push_back(i * 7919 % 100000);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    Shuffle(&keys, &rng);
    for (uint64_t k : keys) {
      Status s = co_await f.tree->Write(
          1, k, OneVersion(1, "v" + std::to_string(k)));
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    for (uint64_t k : keys) {
      auto r = co_await f.tree->Find(k);
      EXPECT_TRUE(r.ok()) << "key " << k;
      if (r.ok()) {
        EXPECT_EQ(r->Newest()->payload, "v" + std::to_string(k));
      }
    }
  });
  EXPECT_GT(f.tree->next_page_id(), 3u);  // splits happened
}

TEST(BTreeTest, ScanReturnsSortedRange) {
  TreeFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    for (uint64_t k = 0; k < 500; k++) {
      (void)co_await f.tree->Write(1, k * 2, OneVersion(1, "v"));
    }
    std::vector<uint64_t> seen;
    auto r = co_await f.tree->Scan(100, 50,
                                   [&](uint64_t k, const VersionChain&) {
                                     seen.push_back(k);
                                     return true;
                                   });
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(seen.size(), 50u);
    if (seen.size() != 50u) co_return;
    EXPECT_EQ(seen.front(), 100u);
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
    EXPECT_EQ(seen.back(), 198u);
  });
}

// Differential test: random upserts/erases vs std::map, with big values to
// force frequent splits, verified by full scan.
TEST(BTreePropertyTest, MatchesModelUnderRandomOps) {
  TreeFixture f(8192);
  std::map<uint64_t, std::string> model;
  RunSim(f.sim, [&]() -> Task<> {
    Random rng(99);
    for (int op = 0; op < 4000; op++) {
      uint64_t key = rng.Uniform(800);
      if (rng.Bernoulli(0.75) || model.count(key) == 0) {
        std::string v(64 + rng.Uniform(400), 'a' + key % 26);
        (void)co_await f.tree->Write(1, key, OneVersion(1, v));
        model[key] = v;
      } else {
        Status s = co_await f.tree->Erase(1, key);
        EXPECT_TRUE(s.ok());
        model.erase(key);
      }
      if (op % 500 == 499) {
        std::vector<std::pair<uint64_t, std::string>> found;
        auto r = co_await f.tree->Scan(
            0, SIZE_MAX, [&](uint64_t k, const VersionChain& c) {
              found.emplace_back(k, c.Newest()->payload);
              return true;
            });
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(found.size(), model.size()) << "op " << op;
        auto mit = model.begin();
        for (size_t i = 0; i < found.size() && mit != model.end();
             i++, ++mit) {
          EXPECT_EQ(found[i].first, mit->first);
          EXPECT_EQ(found[i].second, mit->second);
        }
      }
    }
  });
}

// Replay the complete log into a second pool: the replica must match.
TEST(BTreeTest, LogReplayReproducesTree) {
  TreeFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    for (uint64_t k = 0; k < 1500; k++) {
      (void)co_await f.tree->Write(
          1, k * 3, OneVersion(1, std::string(100, 'x')));
    }
  });

  BufferPoolOptions opts;
  opts.mem_pages = 1 << 20;
  BufferPool replica_pool(f.sim, opts, nullptr);
  RedoApplier applier(f.sim, &replica_pool,
                      RedoApplier::MissPolicy::kMaterialize);
  BTree replica(f.sim, &replica_pool, nullptr);
  RunSim(f.sim, [&]() -> Task<> {
    auto r = co_await applier.ApplyStream(Slice(f.sink.stream()),
                                          kLogStreamStart);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    for (uint64_t k = 0; k < 1500; k++) {
      auto v = co_await replica.Find(k * 3);
      EXPECT_TRUE(v.ok()) << "key " << k * 3;
    }
  });
  EXPECT_EQ(applier.applied_lsn().value(), f.sink.end_lsn());
}

// --------------------------------------------------------------- Engine

struct EngineFixture {
  Simulator sim;
  MemLogSink sink{sim};
  BufferPoolOptions opts;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<Engine> engine;

  EngineFixture() {
    opts.mem_pages = 1 << 18;
    pool = std::make_unique<BufferPool>(sim, opts, nullptr);
    engine = std::make_unique<Engine>(sim, pool.get(), &sink);
    Spawn(sim, [](Engine* e) -> Task<> {
      EXPECT_TRUE((co_await e->Bootstrap()).ok());
    }(engine.get()));
    sim.Run();
  }
};

TEST(EngineTest, CommitThenRead) {
  EngineFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin();
    EXPECT_TRUE(f.engine->Put(txn.get(), MakeKey(1, 10), "row-a").ok());
    EXPECT_TRUE(f.engine->Put(txn.get(), MakeKey(1, 11), "row-b").ok());
    EXPECT_TRUE((co_await f.engine->Commit(txn.get())).ok());

    auto reader = f.engine->Begin(true);
    auto v = co_await f.engine->Get(reader.get(), MakeKey(1, 10));
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(*v, "row-a");
    (void)co_await f.engine->Commit(reader.get());
  });
  EXPECT_EQ(f.engine->stats().commits, 1u);
}

TEST(EngineTest, ReadYourWrites) {
  EngineFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin();
    (void)f.engine->Put(txn.get(), 5, "mine");
    auto v = co_await f.engine->Get(txn.get(), 5);
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(*v, "mine");
    (void)f.engine->Delete(txn.get(), 5);
    auto gone = co_await f.engine->Get(txn.get(), 5);
    EXPECT_TRUE(gone.status().IsNotFound());
    f.engine->Abort(txn.get());
  });
}

TEST(EngineTest, SnapshotIsolationReadersDontSeeLaterCommits) {
  EngineFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    auto w1 = f.engine->Begin();
    (void)f.engine->Put(w1.get(), 100, "v1");
    (void)co_await f.engine->Commit(w1.get());

    auto reader = f.engine->Begin(true);  // snapshot at v1

    auto w2 = f.engine->Begin();
    (void)f.engine->Put(w2.get(), 100, "v2");
    (void)co_await f.engine->Commit(w2.get());

    auto v = co_await f.engine->Get(reader.get(), 100);
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(*v, "v1");  // still the old snapshot
    (void)co_await f.engine->Commit(reader.get());

    auto fresh = f.engine->Begin(true);
    auto v2 = co_await f.engine->Get(fresh.get(), 100);
    EXPECT_EQ(*v2, "v2");
    (void)co_await f.engine->Commit(fresh.get());
  });
}

TEST(EngineTest, WriteWriteConflictAborts) {
  EngineFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    auto seed = f.engine->Begin();
    (void)f.engine->Put(seed.get(), 7, "base");
    (void)co_await f.engine->Commit(seed.get());

    auto t1 = f.engine->Begin();
    auto t2 = f.engine->Begin();
    (void)f.engine->Put(t1.get(), 7, "from-t1");
    (void)f.engine->Put(t2.get(), 7, "from-t2");
    EXPECT_TRUE((co_await f.engine->Commit(t1.get())).ok());
    EXPECT_TRUE((co_await f.engine->Commit(t2.get())).IsAborted());

    auto check = f.engine->Begin(true);
    auto v = co_await f.engine->Get(check.get(), 7);
    EXPECT_EQ(*v, "from-t1");
    (void)co_await f.engine->Commit(check.get());
  });
  EXPECT_EQ(f.engine->stats().conflicts, 1u);
}

TEST(EngineTest, DeleteBecomesTombstone) {
  EngineFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    auto w = f.engine->Begin();
    (void)f.engine->Put(w.get(), 9, "short-lived");
    (void)co_await f.engine->Commit(w.get());

    auto snap = f.engine->Begin(true);  // sees the row

    auto d = f.engine->Begin();
    (void)f.engine->Delete(d.get(), 9);
    (void)co_await f.engine->Commit(d.get());

    auto after = f.engine->Begin(true);
    auto gone = co_await f.engine->Get(after.get(), 9);
    EXPECT_TRUE(gone.status().IsNotFound());
    // But the older snapshot still sees it (version store at work).
    auto old = co_await f.engine->Get(snap.get(), 9);
    EXPECT_TRUE(old.ok());
    EXPECT_EQ(*old, "short-lived");
    (void)co_await f.engine->Commit(snap.get());
    (void)co_await f.engine->Commit(after.get());
  });
}

TEST(EngineTest, ScanVisibilityAndOverlay) {
  EngineFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    auto w = f.engine->Begin();
    for (uint64_t k = 0; k < 20; k++) {
      (void)f.engine->Put(w.get(), MakeKey(2, k), "r" + std::to_string(k));
    }
    (void)co_await f.engine->Commit(w.get());

    auto txn = f.engine->Begin();
    (void)f.engine->Delete(txn.get(), MakeKey(2, 3));
    (void)f.engine->Put(txn.get(), MakeKey(2, 5), "patched");
    auto rows = co_await f.engine->Scan(txn.get(), MakeKey(2, 0), 10);
    EXPECT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 10u);
    if (rows->size() != 10u) co_return;
    // Key 3 deleted, key 5 patched, so first rows are 0,1,2,4,5...
    EXPECT_EQ(KeyRow((*rows)[0].first), 0u);
    EXPECT_EQ(KeyRow((*rows)[3].first), 4u);
    EXPECT_EQ((*rows)[4].second, "patched");
    f.engine->Abort(txn.get());
  });
}

TEST(EngineTest, ManyTransactionsAccumulateCorrectState) {
  EngineFixture f;
  std::map<uint64_t, std::string> model;
  RunSim(f.sim, [&]() -> Task<> {
    Random rng(3);
    for (int t = 0; t < 300; t++) {
      auto txn = f.engine->Begin();
      int ops = 1 + rng.Uniform(5);
      std::map<uint64_t, std::string> local;
      for (int i = 0; i < ops; i++) {
        uint64_t key = rng.Uniform(200);
        std::string val = "t" + std::to_string(t) + "-" + std::to_string(i);
        (void)f.engine->Put(txn.get(), key, val);
        local[key] = val;
      }
      Status s = co_await f.engine->Commit(txn.get());
      EXPECT_TRUE(s.ok());  // sequential txns never conflict
      for (auto& [k, v] : local) model[k] = v;
    }
    auto check = f.engine->Begin(true);
    for (auto& [k, v] : model) {
      auto r = co_await f.engine->Get(check.get(), k);
      EXPECT_TRUE(r.ok());
      if (r.ok()) {
        EXPECT_EQ(*r, v);
      }
    }
    (void)co_await f.engine->Commit(check.get());
  });
}

// Secondary-style replica: replay engine log with external read timestamp.
TEST(EngineTest, ReplicaServesSnapshotReadsViaRedo) {
  EngineFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    auto w = f.engine->Begin();
    (void)f.engine->Put(w.get(), 1, "apple");
    (void)f.engine->Put(w.get(), 2, "banana");
    (void)co_await f.engine->Commit(w.get());
  });

  BufferPoolOptions opts;
  opts.mem_pages = 1 << 18;
  BufferPool replica_pool(f.sim, opts, nullptr);
  RedoApplier applier(f.sim, &replica_pool,
                      RedoApplier::MissPolicy::kMaterialize);
  Engine replica(f.sim, &replica_pool, nullptr);
  replica.SetReadTsProvider([&] { return applier.applied_commit_ts(); });
  RunSim(f.sim, [&]() -> Task<> {
    auto r = co_await applier.ApplyStream(Slice(f.sink.stream()),
                                          kLogStreamStart);
    EXPECT_TRUE(r.ok());
    auto txn = replica.Begin(true);
    auto v = co_await replica.Get(txn.get(), 1);
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(*v, "apple");
    (void)co_await replica.Commit(txn.get());
  });
  EXPECT_EQ(applier.applied_commit_ts(), f.engine->last_committed_ts());
}

}  // namespace
}  // namespace engine
}  // namespace socrates
