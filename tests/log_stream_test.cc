// Logging tier v2 tests: exact landing-zone space accounting under
// variable-size (compressed) blocks, versioned block-frame round trips
// and mixed-version negotiation, corrupt-frame rejection, deterministic
// adaptive block sizing, per-partition stream shards, and the global
// commit watermark's prefix-correctness guarantee.

#include <gtest/gtest.h>

#include "common/compress.h"
#include "engine/log_record.h"
#include "xlog/landing_zone.h"
#include "xlog/log_block.h"
#include "xlog/xlog_client.h"
#include "xlog/xlog_process.h"
#include "xstore/xstore.h"

namespace socrates {
namespace xlog {
namespace {

using engine::kLogStreamStart;
using engine::LogRecord;
using engine::LogRecordType;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  Spawn(s, fn());
  s.Run();
}

LogRecord CommitRecord(Timestamp ts) {
  LogRecord r;
  r.type = LogRecordType::kTxnCommit;
  r.commit_ts = ts;
  return r;
}

LogRecord InsertRecord(PageId page, uint64_t key, size_t value_bytes) {
  LogRecord r;
  r.type = LogRecordType::kLeafInsert;
  r.page_id = page;
  r.key = key;
  r.value = std::string(value_bytes, 'v');
  return r;
}

// ------------------------------------------ LZ space accounting (exact)

TEST(LzAccountingTest, MixedSizeBlocksChargePhysicalBytesExactly) {
  Simulator s;
  LandingZone lz(s, sim::DeviceProfile::DirectDrive(), 1000);
  Lsn pos = kLogStreamStart;
  // A compressed block charges its stored size, not its logical size.
  ASSERT_TRUE(lz.TryReserve(pos, /*logical=*/600, /*stored=*/200,
                            /*compressed=*/true)
                  .ok());
  pos += 600;
  EXPECT_EQ(lz.stored_bytes(), 200u);
  // A raw block charges logical == stored.
  ASSERT_TRUE(lz.TryReserve(pos, 500, 500, false).ok());
  pos += 500;
  EXPECT_EQ(lz.stored_bytes(), 700u);
  // 300 physical bytes left: a 301-byte block must not fit, a 300-byte
  // one must (exact accounting, no slack either way).
  EXPECT_TRUE(lz.TryReserve(pos, 1000, 301, true).IsOutOfSpace());
  ASSERT_TRUE(lz.TryReserve(pos, 1000, 300, true).ok());
  pos += 1000;
  EXPECT_EQ(lz.stored_bytes(), 1000u);
  EXPECT_TRUE(lz.TryReserve(pos, 1, 1, false).IsOutOfSpace());
}

TEST(LzAccountingTest, TruncateFreesWholeStoredBlocksExactly) {
  Simulator s;
  LandingZone lz(s, sim::DeviceProfile::DirectDrive(), 1000);
  std::string logical_a(400, 'a');
  std::string stored_a;
  // Fabricate a "compressed" form by hand: the LZ trusts the caller's
  // stored bytes (the codec is exercised separately below).
  compress::Compress(Slice(logical_a), &stored_a);
  ASSERT_LT(stored_a.size(), logical_a.size());
  RunSim(s, [&]() -> Task<> {
    Lsn pos = kLogStreamStart;
    EXPECT_TRUE(
        lz.TryReserve(pos, 400, stored_a.size(), true).ok());
    EXPECT_TRUE((co_await lz.WriteReserved(pos, Slice(stored_a))).ok());
    pos += 400;
    EXPECT_TRUE(lz.TryReserve(pos, 300, 300, false).ok());
    EXPECT_TRUE(
        (co_await lz.WriteReserved(pos, Slice(std::string(300, 'b'))))
            .ok());
    uint64_t occupied = lz.stored_bytes();
    EXPECT_EQ(occupied, stored_a.size() + 300);
    // Truncating mid-block frees nothing (whole stored blocks only).
    lz.Truncate(kLogStreamStart + 100);
    EXPECT_EQ(lz.stored_bytes(), occupied);
    // Truncating at the block boundary frees exactly that block.
    lz.Truncate(kLogStreamStart + 400);
    EXPECT_EQ(lz.stored_bytes(), 300u);
  });
}

TEST(LzAccountingTest, CompressedBlocksRoundTripThroughWrap) {
  Simulator s;
  // Tiny capacity: seven 300-logical-byte blocks force several wraps of
  // the physical buffer while compression makes stored != logical.
  LandingZone lz(s, sim::DeviceProfile::DirectDrive(), 512);
  RunSim(s, [&]() -> Task<> {
    Lsn pos = kLogStreamStart;
    for (int round = 0; round < 7; round++) {
      std::string logical(300, static_cast<char>('a' + round));
      std::string stored;
      compress::Compress(Slice(logical), &stored);
      EXPECT_TRUE(
          lz.TryReserve(pos, 300, stored.size(), true).ok());
      EXPECT_TRUE((co_await lz.WriteReserved(pos, Slice(stored))).ok());
      pos += 300;
      lz.Truncate(pos - 300);  // retain only the newest block
    }
    auto r = co_await lz.Read(pos - 300, pos);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_EQ(*r, std::string(300, 'g'));
    }
    // Sub-range reads decompress and slice correctly.
    auto mid = co_await lz.Read(pos - 200, pos - 100);
    EXPECT_TRUE(mid.ok());
    if (mid.ok()) {
      EXPECT_EQ(*mid, std::string(100, 'g'));
    }
  });
  EXPECT_EQ(lz.compressed_blocks_written(), 7u);
  EXPECT_LT(lz.stored_bytes_written(), lz.logical_bytes_written());
}

// --------------------------------------------------- block-frame codec

LogBlock TestBlock() {
  std::string payload;
  for (int i = 0; i < 20; i++) {
    engine::FrameRecord(&payload, Slice(InsertRecord(7, i, 120).Encode()));
  }
  return LogBlock::Make(kLogStreamStart + 12345, payload, {1, 3});
}

TEST(BlockFrameTest, RoundTripRawAndCompressed) {
  LogBlock b = TestBlock();
  for (bool zip : {false, true}) {
    std::string frame =
        EncodeBlockFrame(b, kBlockFrameV2, /*compress=*/zip);
    LogBlock out;
    ASSERT_TRUE(
        DecodeBlockFrame(Slice(frame), kBlockFrameVersionMax, &out).ok());
    EXPECT_EQ(out.start_lsn, b.start_lsn);
    EXPECT_EQ(out.payload(), b.payload());
    EXPECT_EQ(out.payload_size, b.payload().size());
    EXPECT_EQ(out.partitions(), b.partitions());
    EXPECT_FALSE(out.filtered);
  }
  // The compressed frame is genuinely smaller for repetitive payloads.
  std::string raw = EncodeBlockFrame(b, kBlockFrameV2, false);
  std::string zip = EncodeBlockFrame(b, kBlockFrameV2, true);
  EXPECT_LT(zip.size(), raw.size());
  // v1 frames never compress and decode under a v1-only receiver.
  std::string v1 = EncodeBlockFrame(b, kBlockFrameV1, true);
  LogBlock out;
  ASSERT_TRUE(DecodeBlockFrame(Slice(v1), kBlockFrameV1, &out).ok());
  EXPECT_EQ(out.payload(), b.payload());
}

TEST(BlockFrameTest, TooNewFrameAnswersNotSupported) {
  LogBlock b = TestBlock();
  std::string frame = EncodeBlockFrame(b, kBlockFrameV2, true);
  LogBlock out;
  Status s = DecodeBlockFrame(Slice(frame), kBlockFrameV1, &out);
  EXPECT_TRUE(s.IsNotSupported());
}

TEST(BlockFrameTest, CorruptFramesRejected) {
  LogBlock b = TestBlock();
  std::string frame = EncodeBlockFrame(b, kBlockFrameV2, true);
  LogBlock out;
  // Truncated.
  EXPECT_TRUE(DecodeBlockFrame(Slice(frame.data(), frame.size() - 3),
                               kBlockFrameVersionMax, &out)
                  .IsCorruption());
  EXPECT_TRUE(DecodeBlockFrame(Slice(frame.data(), 5),
                               kBlockFrameVersionMax, &out)
                  .IsCorruption());
  // Bad magic.
  std::string bad = frame;
  bad[0] ^= 0x5a;
  EXPECT_TRUE(DecodeBlockFrame(Slice(bad), kBlockFrameVersionMax, &out)
                  .IsCorruption());
  // Body bit flip breaks the checksum.
  bad = frame;
  bad[bad.size() / 2] ^= 0x01;
  EXPECT_TRUE(DecodeBlockFrame(Slice(bad), kBlockFrameVersionMax, &out)
                  .IsCorruption());
  // Checksum bit flip.
  bad = frame;
  bad[bad.size() - 1] ^= 0x80;
  EXPECT_TRUE(DecodeBlockFrame(Slice(bad), kBlockFrameVersionMax, &out)
                  .IsCorruption());
}

// ------------------------------------------- end-to-end via the client

struct XLogFixture {
  Simulator sim;
  xstore::XStore lt{sim};
  LandingZone lz;
  XLogProcess xlog;
  XLogClient client;

  explicit XLogFixture(sim::DeviceProfile lz_profile =
                           sim::DeviceProfile::DirectDrive(),
                       XLogClientOptions copts = {},
                       XLogOptions xopts = {})
      : lz(sim, lz_profile, 64 * MiB),
        xlog(sim, &lz, &lt, xopts),
        client(sim, &lz, &xlog, nullptr, copts) {
    xlog.Start();
    client.Start();
  }
};

TEST(FrameNegotiationTest, NewSenderDowngradesForOldReceiver) {
  XLogOptions xopts;
  xopts.max_frame_version = kBlockFrameV1;  // old XLOG process
  XLogClientOptions copts;
  copts.frame_version = kBlockFrameV2;      // new Primary
  copts.compress_blocks = true;
  XLogFixture f(sim::DeviceProfile::DirectDrive(), copts, xopts);
  RunSim(f.sim, [&]() -> Task<> {
    for (int i = 0; i < 30; i++) {
      f.client.Append(InsertRecord(1, i, 200));
      if (i % 10 == 9) (void)co_await f.client.Flush();
    }
    (void)co_await f.client.Flush();
  });
  // The first v2 frame bounced; the client re-encoded it at v1 and sent
  // all later frames at v1 — nothing was lost and no repair was needed.
  EXPECT_GE(f.xlog.frames_rejected(), 1u);
  EXPECT_EQ(f.client.frame_downgrades(), 1u);
  EXPECT_EQ(f.client.wire_version(), kBlockFrameV1);
  EXPECT_GT(f.xlog.frames_delivered(), 0u);
  EXPECT_EQ(f.xlog.available().value(), f.client.end_lsn());
}

TEST(FrameNegotiationTest, OldSenderAcceptedByNewReceiver) {
  XLogOptions xopts;
  xopts.max_frame_version = kBlockFrameV2;  // new XLOG process
  XLogClientOptions copts;
  copts.frame_version = kBlockFrameV1;      // old Primary
  XLogFixture f(sim::DeviceProfile::DirectDrive(), copts, xopts);
  RunSim(f.sim, [&]() -> Task<> {
    for (int i = 0; i < 30; i++) {
      f.client.Append(InsertRecord(1, i, 200));
    }
    (void)co_await f.client.Flush();
  });
  EXPECT_EQ(f.xlog.frames_rejected(), 0u);
  EXPECT_EQ(f.client.frame_downgrades(), 0u);
  EXPECT_EQ(f.xlog.available().value(), f.client.end_lsn());
}

TEST(FrameNegotiationTest, CorruptWireFrameCountedAndDropped) {
  Simulator s;
  xstore::XStore lt(s);
  LandingZone lz(s, sim::DeviceProfile::DirectDrive(), 64 * MiB);
  XLogProcess xlog(s, &lz, &lt, {});
  std::string frame = EncodeBlockFrame(TestBlock(), kBlockFrameV2, true);
  frame[frame.size() / 2] ^= 0x10;
  EXPECT_TRUE(xlog.DeliverFrame(Slice(frame)).IsCorruption());
  EXPECT_EQ(xlog.frames_corrupt(), 1u);
  EXPECT_EQ(xlog.pending_blocks(), 0u);  // never entered the pending area
}

// ------------------------------------------------ adaptive block sizing

struct SizingOutcome {
  uint64_t blocks = 0;
  double mean_flush = 0;
  uint64_t holds = 0;
  Lsn end = 0;
  uint64_t wire_bytes = 0;
};

SizingOutcome RunTrickleThenLoad(BlockSizing sizing, bool zip) {
  XLogClientOptions copts;
  copts.block_sizing = sizing;
  copts.compress_blocks = zip;
  XLogFixture f(sim::DeviceProfile::DirectDrive(), copts);
  RunSim(f.sim, [&]() -> Task<> {
    // Steady fan-in: records arrive every 10 us while a quorum write
    // takes ~800 us, so the adaptive target sits well above one record.
    for (int i = 0; i < 400; i++) {
      f.client.Append(InsertRecord(1, i, 64));
      co_await sim::Delay(f.sim, 10);
    }
    (void)co_await f.client.Flush();
  });
  SizingOutcome out;
  out.blocks = f.client.blocks_written();
  out.mean_flush = f.client.flush_sizes().mean();
  out.holds = f.client.adaptive_holds();
  out.end = f.client.end_lsn();
  out.wire_bytes = f.client.wire_bytes_sent();
  EXPECT_EQ(f.xlog.available().value(), f.client.end_lsn());
  return out;
}

TEST(AdaptiveSizingTest, ControllerBatchesBiggerBlocksUnderFanIn) {
  SizingOutcome fixed = RunTrickleThenLoad(BlockSizing::kFixed, false);
  SizingOutcome adaptive =
      RunTrickleThenLoad(BlockSizing::kAdaptive, false);
  EXPECT_EQ(fixed.end, adaptive.end);  // same stream either way
  EXPECT_GT(adaptive.holds, 0u);
  EXPECT_LT(adaptive.blocks, fixed.blocks);
  EXPECT_GT(adaptive.mean_flush, fixed.mean_flush);
}

TEST(AdaptiveSizingTest, LoneCommitIsNotHeld) {
  XLogClientOptions copts;
  copts.block_sizing = BlockSizing::kAdaptive;
  XLogFixture f(sim::DeviceProfile::DirectDrive(), copts);
  SimTime committed_at = 0;
  RunSim(f.sim, [&]() -> Task<> {
    f.client.Append(CommitRecord(1));
    (void)co_await f.client.Flush();
    committed_at = f.sim.now();
  });
  // With no arrival history the target is zero: the cut is immediate and
  // the commit pays only the quorum write, never the hold cap.
  EXPECT_EQ(f.client.adaptive_holds(), 0u);
  EXPECT_LT(committed_at,
            static_cast<SimTime>(copts.adaptive_hold_cap_us));
}

TEST(AdaptiveSizingTest, SameSeedSameBlockBoundaries) {
  SizingOutcome a = RunTrickleThenLoad(BlockSizing::kAdaptive, true);
  SizingOutcome b = RunTrickleThenLoad(BlockSizing::kAdaptive, true);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.holds, b.holds);
  EXPECT_EQ(a.mean_flush, b.mean_flush);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
}

// ------------------------------ stream shards & watermark correctness

TEST(StreamShardTest, FilteredPullServedFromShardWithGapRuns) {
  XLogOptions xopts;
  xopts.partition_map.pages_per_partition = 100;
  XLogClientOptions copts;
  copts.partition_map = xopts.partition_map;
  XLogFixture f(sim::DeviceProfile::DirectDrive(), copts, xopts);
  RunSim(f.sim, [&]() -> Task<> {
    // Alternate blocks between partitions 0 and 1.
    for (int i = 0; i < 10; i++) {
      f.client.Append(InsertRecord(i % 2 == 0 ? 5 : 150, i, 80));
      (void)co_await f.client.Flush();
    }
  });
  RunSim(f.sim, [&]() -> Task<> {
    Lsn pos = kLogStreamStart;
    uint64_t real = 0, gaps = 0;
    while (pos < f.xlog.available().value()) {
      auto blocks = co_await f.xlog.Pull(pos, PartitionId{1}, 1 * MiB);
      EXPECT_TRUE(blocks.ok());
      if (!blocks.ok() || blocks->empty()) break;
      for (auto& b : *blocks) {
        EXPECT_EQ(b.start_lsn, pos);
        if (b.filtered) {
          gaps++;
          EXPECT_TRUE(b.payload().empty());
        } else {
          real++;
          EXPECT_TRUE(b.TouchesPartition(1));
        }
        pos = b.end_lsn();
      }
    }
    EXPECT_EQ(pos, f.client.end_lsn());
    EXPECT_EQ(real, 5u);
    // Consecutive irrelevant blocks coalesce: at most one gap run
    // between relevant blocks (here they strictly alternate).
    EXPECT_LE(gaps, real + 1);
  });
  EXPECT_GT(f.xlog.pulls_from_shard(), 0u);
  EXPECT_EQ(f.xlog.stream_shards(), 2u);
}

TEST(WatermarkTest, NeverExposesRecordWithUnacknowledgedPredecessors) {
  Simulator s;
  xstore::XStore lt(s);
  LandingZone lz(s, sim::DeviceProfile::DirectDrive(), 64 * MiB);
  XLogOptions xopts;
  xopts.partition_map.pages_per_partition = 100;
  XLogProcess xlog(s, &lz, &lt, xopts);
  xlog.Start();

  // Two contiguous blocks: A touches partition 0, B touches partition 1.
  std::string pa, pb;
  engine::FrameRecord(&pa, Slice(InsertRecord(5, 1, 50).Encode()));
  engine::FrameRecord(&pb, Slice(InsertRecord(150, 2, 50).Encode()));
  Lsn a_end = kLogStreamStart + pa.size();
  Lsn b_end = a_end + pb.size();
  RunSim(s, [&]() -> Task<> {
    (void)co_await lz.Write(kLogStreamStart, Slice(pa));
    (void)co_await lz.Write(a_end, Slice(pb));
  });

  // Only B arrives on the lossy channel (A's delivery was lost), and
  // nothing is acknowledged yet: nothing may be exposed — not even to a
  // partition-1 consumer whose own lane contains B.
  xlog.DeliverBlock(LogBlock::Make(a_end, pb, {1}));
  s.RunFor(100000);
  EXPECT_EQ(xlog.available().value(), kLogStreamStart);
  RunSim(s, [&]() -> Task<> {
    auto blocks = co_await xlog.Pull(kLogStreamStart, PartitionId{1},
                                     1 * MiB);
    EXPECT_TRUE(blocks.ok());
    if (blocks.ok()) {
      EXPECT_TRUE(blocks->empty());
    }
  });

  // Acknowledge through A only: the repair path recovers A from the LZ,
  // but B — already sitting in the pending area — must stay invisible
  // because its own range is not yet acknowledged.
  xlog.NotifyHardened(a_end);
  s.RunFor(1000000);
  EXPECT_EQ(xlog.available().value(), a_end);
  RunSim(s, [&]() -> Task<> {
    auto blocks = co_await xlog.Pull(kLogStreamStart, PartitionId{1},
                                     1 * MiB);
    EXPECT_TRUE(blocks.ok());
    if (!blocks.ok()) co_return;
    for (auto& b : *blocks) {
      EXPECT_LE(b.end_lsn(), a_end);
      EXPECT_TRUE(b.filtered);  // partition 1 has no exposed payload yet
    }
  });

  // Acknowledge through B: now (and only now) the lane serves it.
  xlog.NotifyHardened(b_end);
  s.RunFor(1000000);
  EXPECT_EQ(xlog.available().value(), b_end);
  RunSim(s, [&]() -> Task<> {
    auto blocks = co_await xlog.Pull(kLogStreamStart, PartitionId{1},
                                     1 * MiB);
    EXPECT_TRUE(blocks.ok());
    if (!blocks.ok()) co_return;
    EXPECT_EQ(blocks->size(), 2u);
    if (blocks->size() != 2) co_return;
    EXPECT_TRUE((*blocks)[0].filtered);
    EXPECT_FALSE((*blocks)[1].filtered);
    EXPECT_EQ((*blocks)[1].payload(), pb);
  });
}

TEST(WatermarkTest, LossyShardedStreamStaysPrefixCorrect) {
  XLogOptions xopts;
  xopts.partition_map.pages_per_partition = 100;
  XLogClientOptions copts;
  copts.partition_map = xopts.partition_map;
  copts.delivery_loss_prob = 0.3;
  copts.compress_blocks = true;
  XLogFixture f(sim::DeviceProfile::DirectDrive(), copts, xopts);
  RunSim(f.sim, [&]() -> Task<> {
    for (int i = 0; i < 200; i++) {
      f.client.Append(InsertRecord((i % 3) * 100 + 5, i, 60));
      if (i % 8 == 7) (void)co_await f.client.Flush();
    }
    (void)co_await f.client.Flush();
  });
  f.sim.RunFor(5LL * 1000 * 1000);
  // Filtered consumers of every lane see a contiguous stream whose every
  // served block is below the acknowledged frontier.
  for (PartitionId part = 0; part < 3; part++) {
    RunSim(f.sim, [&]() -> Task<> {
      Lsn pos = kLogStreamStart;
      while (pos < f.xlog.available().value()) {
        auto blocks = co_await f.xlog.Pull(pos, part, 1 * MiB);
        EXPECT_TRUE(blocks.ok());
        if (!blocks.ok() || blocks->empty()) break;
        for (auto& b : *blocks) {
          EXPECT_EQ(b.start_lsn, pos);
          EXPECT_LE(b.end_lsn(), f.xlog.hardened_lsn());
          pos = b.end_lsn();
        }
      }
      EXPECT_EQ(pos, f.client.end_lsn());
    });
  }
}

// -------------------------------------------------- parallel destaging

TEST(DestageTest, ParallelLanesArchiveTheExactStream) {
  XLogOptions xopts;
  xopts.destage_lanes = 4;
  xopts.sequence_map_bytes = 16 * KiB;  // force continuous destaging
  XLogFixture f(sim::DeviceProfile::DirectDrive(), {}, xopts);
  std::string expected;
  RunSim(f.sim, [&]() -> Task<> {
    for (int i = 0; i < 400; i++) {
      LogRecord rec = InsertRecord(1, i, 150);
      engine::FrameRecord(&expected, Slice(rec.Encode()));
      f.client.Append(rec);
      if (i % 25 == 24) (void)co_await f.client.Flush();
    }
    (void)co_await f.client.Flush();
  });
  f.sim.RunFor(30LL * 1000 * 1000);
  EXPECT_EQ(f.xlog.destaged_lsn(), f.client.end_lsn());
  EXPECT_EQ(f.lz.start_lsn(), f.xlog.destaged_lsn());
  // Out-of-order lane completions must still produce a byte-identical
  // archive (the destaged frontier only advances over the contiguous
  // prefix, and each batch writes at its own stream offset).
  std::string lt_bytes = f.lt.ReadRaw(
      "log/lt", 0, f.client.end_lsn() - kLogStreamStart);
  EXPECT_EQ(lt_bytes, expected);
}

TEST(DestageTest, LanesSurviveXStoreOutageWithoutReordering) {
  XLogOptions xopts;
  xopts.destage_lanes = 3;
  XLogFixture f(sim::DeviceProfile::DirectDrive(), {}, xopts);
  f.lt.SetAvailable(false);
  Spawn(f.sim, [](XLogFixture* fx) -> Task<> {
    for (int i = 0; i < 80; i++) fx->client.Append(InsertRecord(1, i, 100));
    EXPECT_TRUE((co_await fx->client.Flush()).ok());
  }(&f));
  f.sim.RunFor(500000);
  EXPECT_LT(f.xlog.destaged_lsn(), f.client.end_lsn());  // blocked
  f.lt.SetAvailable(true);
  f.sim.RunFor(30LL * 1000 * 1000);
  EXPECT_EQ(f.xlog.destaged_lsn(), f.client.end_lsn());
  EXPECT_EQ(f.lz.start_lsn(), f.xlog.destaged_lsn());
}

}  // namespace
}  // namespace xlog
}  // namespace socrates
