// Parallel redo tests: lane count must never change results (only the
// virtual time an apply takes), replays must be deterministic, and the
// §4.5 pending-fetch registration protocol (RegisterPendingFetch /
// DrainPendingInto) must stay correct when records race concurrent apply
// lanes.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "engine/btree.h"
#include "engine/buffer_pool.h"
#include "engine/log_record.h"
#include "engine/log_sink.h"
#include "engine/redo.h"
#include "engine/version.h"
#include "sim/cpu.h"

namespace socrates {
namespace engine {
namespace {

using sim::Simulator;
using sim::Spawn;
using sim::Task;

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  Spawn(s, fn());
  s.Run();
}

VersionChain OneVersion(Timestamp ts, const std::string& v) {
  VersionChain c;
  c.Push(ts, false, Slice(v));
  return c;
}

// Update-heavy stream: `passes` passes over the same keys (pass 0 inserts,
// later passes overwrite), with a kTxnCommit barrier record every 8
// writes. Returns the framed stream; *mid gets the record-boundary LSN at
// the end of pass 0.
std::string BuildUpdateHeavyStream(uint64_t keys, int passes, Lsn* mid) {
  Simulator sim;
  MemLogSink sink(sim);
  BufferPoolOptions opts;
  opts.mem_pages = 1 << 20;
  BufferPool pool(sim, opts, nullptr);
  BTree tree(sim, &pool, &sink);
  RunSim(sim, [&]() -> Task<> {
    EXPECT_TRUE((co_await tree.Create()).ok());
    Timestamp ts = 1;
    int in_txn = 0;
    for (int pass = 0; pass < passes; pass++) {
      for (uint64_t k = 0; k < keys; k++) {
        std::string value(100, static_cast<char>('a' + pass));
        EXPECT_TRUE(
            (co_await tree.Write(1, k * 5, OneVersion(ts, value))).ok());
        if (++in_txn == 8) {
          LogRecord commit;
          commit.type = LogRecordType::kTxnCommit;
          commit.commit_ts = ts++;
          sink.Append(commit);
          in_txn = 0;
        }
      }
      if (pass == 0 && mid != nullptr) *mid = sink.end_lsn();
    }
  });
  return sink.stream();
}

struct ApplyOutcome {
  Lsn applied = 0;
  Timestamp commit_ts = 0;
  uint64_t records_applied = 0;
  uint64_t parallel_batches = 0;
  uint64_t barrier_stalls = 0;
  std::map<PageId, std::string> pages;  // raw bytes of every final page
};

// Materialize `stream` into a fresh pool with the given lane count and
// capture everything observable: watermark, commit ts, counters, and the
// byte image of every page.
ApplyOutcome MaterializeWithLanes(const std::string& stream, int lanes,
                                  Lsn stop_at = kMaxLsn) {
  Simulator sim;
  BufferPoolOptions opts;
  opts.mem_pages = 1 << 20;
  BufferPool pool(sim, opts, nullptr);
  sim::CpuResource cpu(sim, 4);
  RedoApplier applier(sim, &pool, RedoApplier::MissPolicy::kMaterialize);
  applier.ConfigureLanes(lanes, &cpu);
  ApplyOutcome out;
  RunSim(sim, [&]() -> Task<> {
    Result<Lsn> r = co_await applier.ApplyStream(Slice(stream),
                                                 kLogStreamStart,
                                                 /*resume_from=*/0, stop_at);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) co_return;
    applier.applied_lsn().Advance(*r);
    for (PageId id = 1; id <= applier.max_page_seen(); id++) {
      Result<PageRef> ref = co_await pool.GetPage(id);
      if (!ref.ok()) continue;  // never created
      out.pages.emplace(id, std::string(ref->page()->data(), kPageSize));
    }
  });
  out.applied = applier.applied_lsn().value();
  out.commit_ts = applier.applied_commit_ts();
  out.records_applied = applier.records_applied();
  out.parallel_batches = applier.parallel_batches();
  out.barrier_stalls = applier.barrier_stalls();
  return out;
}

void ExpectSameOutcome(const ApplyOutcome& a, const ApplyOutcome& b,
                       const char* label) {
  EXPECT_EQ(a.applied, b.applied) << label;
  EXPECT_EQ(a.commit_ts, b.commit_ts) << label;
  EXPECT_EQ(a.records_applied, b.records_applied) << label;
  ASSERT_EQ(a.pages.size(), b.pages.size()) << label;
  for (const auto& [id, bytes] : a.pages) {
    auto it = b.pages.find(id);
    ASSERT_NE(it, b.pages.end()) << label << " page " << id;
    EXPECT_EQ(0, memcmp(bytes.data(), it->second.data(), kPageSize))
        << label << " page " << id;
  }
}

TEST(ParallelRedoTest, LaneCountDoesNotChangeResults) {
  std::string stream = BuildUpdateHeavyStream(800, 3, nullptr);
  ApplyOutcome serial = MaterializeWithLanes(stream, 1);
  EXPECT_EQ(serial.parallel_batches, 0u);
  EXPECT_GT(serial.pages.size(), 4u);  // splits happened; real sharding
  for (int lanes : {2, 4, 8}) {
    ApplyOutcome parallel = MaterializeWithLanes(stream, lanes);
    EXPECT_GT(parallel.parallel_batches, 0u);
    ExpectSameOutcome(serial, parallel,
                      ("lanes=" + std::to_string(lanes)).c_str());
  }
}

TEST(ParallelRedoTest, DeterministicAcrossRuns) {
  std::string stream = BuildUpdateHeavyStream(500, 2, nullptr);
  ApplyOutcome first = MaterializeWithLanes(stream, 4);
  ApplyOutcome second = MaterializeWithLanes(stream, 4);
  ExpectSameOutcome(first, second, "same seed, same lanes");
  EXPECT_EQ(first.barrier_stalls, second.barrier_stalls);
}

// Applies the stream tail [mid, end) with the kIgnoreUncached policy —
// the Secondary role — as a detached task so the test body can race a
// pending-fetch drain against the in-flight lanes.
Task<> ApplyTail(RedoApplier* applier, const std::string* stream, Lsn mid,
                 bool* done) {
  Result<Lsn> r = co_await applier->ApplyStream(Slice(*stream),
                                                kLogStreamStart,
                                                /*resume_from=*/mid);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (r.ok()) applier->applied_lsn().Advance(*r);
  *done = true;
}

// The §4.5 race under parallel apply: while lanes chew through the tail,
// a "fetch" of a purged page completes mid-stream; queued records are
// drained into the image, the image is installed, and later records
// apply to it directly. The final bytes must equal the serial
// materialization.
void RunPendingFetchRace(SimTime drain_at_us) {
  Lsn mid = 0;
  std::string stream = BuildUpdateHeavyStream(600, 3, &mid);
  ASSERT_GT(mid, kLogStreamStart);
  ApplyOutcome reference = MaterializeWithLanes(stream, 1);
  ApplyOutcome at_mid = MaterializeWithLanes(stream, 1, mid);

  // Victim: the first page touched after `mid` that already exists at
  // `mid` (so the "remote fetch" has an image to return).
  PageId victim = kInvalidPageId;
  (void)ForEachRecord(Slice(stream), kLogStreamStart,
                      [&](Lsn lsn, Slice payload) {
                        if (lsn < mid) return true;
                        LogRecord rec;
                        if (!LogRecord::Decode(payload, &rec).ok()) {
                          return false;
                        }
                        if (rec.HasPage() &&
                            at_mid.pages.count(rec.page_id) != 0) {
                          victim = rec.page_id;
                          return false;
                        }
                        return true;
                      });
  ASSERT_NE(victim, kInvalidPageId);

  Simulator sim;
  BufferPoolOptions opts;
  opts.mem_pages = 1 << 20;
  BufferPool pool(sim, opts, nullptr);
  sim::CpuResource cpu(sim, 4);

  // Warm the cache with the prefix (what the Secondary had applied
  // before the fetch started).
  RedoApplier warm(sim, &pool, RedoApplier::MissPolicy::kMaterialize);
  warm.ConfigureLanes(4, &cpu);
  RunSim(sim, [&]() -> Task<> {
    Result<Lsn> r = co_await warm.ApplyStream(Slice(stream), kLogStreamStart,
                                              /*resume_from=*/0,
                                              /*stop_at=*/mid);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });

  // The victim page is not cached; a fetch for it is in flight.
  pool.Purge(victim);
  ASSERT_FALSE(pool.Contains(victim));

  RedoApplier applier(sim, &pool,
                      RedoApplier::MissPolicy::kIgnoreUncached);
  applier.ConfigureLanes(4, &cpu);
  applier.applied_lsn().Advance(mid);
  applier.RegisterPendingFetch(victim);

  storage::Page image;
  ASSERT_TRUE(image.FromSlice(Slice(at_mid.pages[victim])).ok());

  bool apply_done = false;
  RunSim(sim, [&]() -> Task<> {
    Spawn(sim, ApplyTail(&applier, &stream, mid, &apply_done));
    co_await sim::Delay(sim, drain_at_us);
    // Fetch completes: drain queued records into the image and install
    // it, with no suspension point in between (the §4.5 protocol).
    Status ds = applier.DrainPendingInto(victim, &image);
    EXPECT_TRUE(ds.ok()) << ds.ToString();
    pool.InstallIfAbsent(image);
  });
  ASSERT_TRUE(apply_done);
  EXPECT_EQ(applier.applied_commit_ts(), reference.commit_ts);

  // Every page that existed at mid (and stayed cached) must match the
  // serial materialization byte for byte — including the victim.
  RunSim(sim, [&]() -> Task<> {
    for (const auto& kv : at_mid.pages) {
      PageId id = kv.first;
      Result<PageRef> ref = co_await pool.GetPage(id);
      EXPECT_TRUE(ref.ok()) << "page " << id;
      if (!ref.ok()) continue;
      EXPECT_EQ(0, memcmp(ref->page()->data(),
                          reference.pages.at(id).data(), kPageSize))
          << "page " << id;
    }
  });
}

TEST(ParallelRedoPendingFetchTest, DrainRacesParallelApply) {
  RunPendingFetchRace(/*drain_at_us=*/50);
}

TEST(ParallelRedoPendingFetchTest, DrainAfterTailFullyQueued) {
  // Fetch resolves long after the apply finished: every tail record for
  // the victim sat in the pending queue and is applied by the drain.
  RunPendingFetchRace(/*drain_at_us=*/10 * 1000 * 1000);
}

}  // namespace
}  // namespace engine
}  // namespace socrates
