// Regression + property tests for the XLOG serving pipeline under
// stress: sequence-map eviction, destaging lag, the destage frontier
// (ranges that straddle SSD-cache/LZ/LT coverage), batched destaging,
// and late consumers. These pin down a real bug found during
// development: a Pull that straddled the destage frontier fell through
// to the LT and silently returned zeros, making consumers skip log.

#include <gtest/gtest.h>

#include "engine/log_record.h"
#include "xlog/landing_zone.h"
#include "xlog/xlog_client.h"
#include "xlog/xlog_process.h"
#include "xstore/xstore.h"

namespace socrates {
namespace xlog {
namespace {

using engine::kLogStreamStart;
using engine::LogRecord;
using engine::LogRecordType;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  while (!done && s.Step()) {
  }
  ASSERT_TRUE(done) << "driver did not finish";
}

LogRecord InsertRecord(PageId page, uint64_t key, size_t bytes) {
  LogRecord r;
  r.type = LogRecordType::kLeafInsert;
  r.page_id = page;
  r.key = key;
  r.value = std::string(bytes, 'v');
  return r;
}

struct PipelineFixture {
  Simulator sim;
  xstore::XStore lt;
  LandingZone lz;
  XLogProcess xlog;
  XLogClient client;

  explicit PipelineFixture(uint64_t seq_map_bytes = 256 * KiB,
                           double xstore_mb_s = 5.0)
      : lt(sim, sim::DeviceProfile::XStore(), xstore_mb_s),
        lz(sim, sim::DeviceProfile::DirectDrive(), 64 * MiB),
        xlog(sim, &lz, &lt, MakeOptions(seq_map_bytes)),
        client(sim, &lz, &xlog, nullptr, {}) {
    xlog.Start();
    client.Start();
  }

  static XLogOptions MakeOptions(uint64_t seq_map_bytes) {
    XLogOptions o;
    o.sequence_map_bytes = seq_map_bytes;
    return o;
  }

  // Consume [kLogStreamStart, client.end_lsn()) like a page server would
  // and return every record key seen, verifying contiguity.
  std::vector<uint64_t> ConsumeAll(std::optional<PartitionId> filter) {
    std::vector<uint64_t> keys;
    RunSim(sim, [&]() -> Task<> {
      Lsn pos = kLogStreamStart;
      Lsn target = client.end_lsn();
      int idle_rounds = 0;
      while (pos < target && idle_rounds < 10000) {
        auto blocks = co_await xlog.Pull(pos, filter, 1 * MiB);
        EXPECT_TRUE(blocks.ok() || blocks.status().IsBusy())
            << blocks.status().ToString();
        if (!blocks.ok() || blocks->empty()) {
          idle_rounds++;
          co_await sim::Delay(sim, 5000);
          continue;
        }
        idle_rounds = 0;
        for (auto& b : *blocks) {
          // Contiguity: no silent gaps, ever.
          EXPECT_LE(b.start_lsn, pos);
          Lsn end = b.start_lsn + b.payload_size;
          EXPECT_GT(end, pos);
          if (!b.filtered) {
            (void)engine::ForEachRecord(
                Slice(b.payload()), b.start_lsn, [&](Lsn lsn, Slice p) {
                  if (lsn >= pos) {
                    LogRecord rec;
                    EXPECT_TRUE(LogRecord::Decode(p, &rec).ok());
                    if (rec.type == LogRecordType::kLeafInsert) {
                      keys.push_back(rec.key);
                    }
                  }
                  return true;
                });
          }
          pos = end;
        }
      }
      EXPECT_GE(pos, target) << "consumer never reached the log end";
    });
    return keys;
  }
};

TEST(XLogPipelineTest, LateConsumerStraddlesDestageFrontier) {
  // Tiny sequence map + slow XStore: a consumer starting from LSN 0
  // must read across SSD-cache/LZ coverage while destaging is behind.
  PipelineFixture f(/*seq_map_bytes=*/128 * KiB, /*xstore_mb_s=*/2.0);
  const int kRecords = 3000;
  RunSim(f.sim, [&]() -> Task<> {
    for (int i = 0; i < kRecords; i++) {
      f.client.Append(InsertRecord(1 + (i % 7), i, 600));
      if (i % 40 == 39) (void)co_await f.client.Flush();
    }
    (void)co_await f.client.Flush();
  });
  // Destaging is far behind at this point (slow XStore).
  EXPECT_LT(f.xlog.destaged_lsn(), f.client.end_lsn());
  std::vector<uint64_t> keys = f.ConsumeAll(std::nullopt);
  ASSERT_EQ(keys.size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; i++) {
    EXPECT_EQ(keys[i], static_cast<uint64_t>(i));
  }
}

TEST(XLogPipelineTest, FilteredConsumerSeesExactlyItsPartition) {
  // Filtering is block-granular: only blocks touching the consumer's
  // partition carry payload. Write single-partition runs separated by
  // flushes so blocks are single-partition, then check a partition-1
  // consumer receives every partition-1 record and no partition-0-only
  // block payload.
  PipelineFixture f(/*seq_map_bytes=*/128 * KiB, /*xstore_mb_s=*/4.0);
  const int kRuns = 40;
  const int kPerRun = 25;
  std::map<uint64_t, int> key_partition;
  RunSim(f.sim, [&]() -> Task<> {
    uint64_t key = 0;
    for (int run = 0; run < kRuns; run++) {
      int part = run % 2;
      PageId page = part == 0 ? 10 : 16384 + 10;  // default partition map
      for (int i = 0; i < kPerRun; i++) {
        f.client.Append(InsertRecord(page, key, 500));
        key_partition[key] = part;
        key++;
      }
      (void)co_await f.client.Flush();  // cut the block per run
    }
  });
  std::vector<uint64_t> keys = f.ConsumeAll(PartitionId{1});
  // All partition-1 records delivered...
  int p1_total = 0;
  for (auto& [k, p] : key_partition) {
    if (p == 1) p1_total++;
  }
  int p1_seen = 0;
  for (uint64_t k : keys) {
    if (key_partition[k] == 1) p1_seen++;
  }
  EXPECT_EQ(p1_seen, p1_total);
  // ...and some partition-0-only blocks arrived as metadata, not
  // payload. (Blocks reconstructed from storage after sequence-map
  // eviction are annotated at chunk granularity and may span runs, so
  // filtering there is coarser — this bound is deliberately loose.)
  EXPECT_LT(keys.size(), static_cast<size_t>(kRuns * kPerRun));
}

TEST(XLogPipelineTest, BatchedDestagingKeepsLtExact) {
  PipelineFixture f(/*seq_map_bytes=*/64 * KiB, /*xstore_mb_s=*/50.0);
  const int kRecords = 2000;
  RunSim(f.sim, [&]() -> Task<> {
    for (int i = 0; i < kRecords; i++) {
      f.client.Append(InsertRecord(3, i, 300));
      if (i % 100 == 99) (void)co_await f.client.Flush();
    }
    (void)co_await f.client.Flush();
  });
  f.sim.RunFor(60LL * 1000 * 1000);  // drain destaging fully
  ASSERT_EQ(f.xlog.destaged_lsn(), f.client.end_lsn());
  // LT must hold the byte-exact framed stream.
  std::string lt_bytes = f.lt.ReadRaw(
      "log/lt", 0, f.client.end_lsn() - kLogStreamStart);
  int seen = 0;
  Status st = engine::ForEachRecord(
      Slice(lt_bytes), kLogStreamStart, [&](Lsn, Slice p) {
        LogRecord rec;
        EXPECT_TRUE(LogRecord::Decode(p, &rec).ok());
        seen++;
        return true;
      });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(seen, kRecords);
}

TEST(XLogPipelineTest, LossyDeliveryPlusEvictionStillContiguous) {
  // Combine everything: lossy channel (repairs from LZ), tiny sequence
  // map, slow destaging, late consumer.
  XLogClientOptions copts;
  copts.delivery_loss_prob = 0.3;
  Simulator sim;
  xstore::XStore lt(sim, sim::DeviceProfile::XStore(), 3.0);
  LandingZone lz(sim, sim::DeviceProfile::DirectDrive(), 64 * MiB);
  XLogOptions xopts;
  xopts.sequence_map_bytes = 96 * KiB;
  XLogProcess xlog(sim, &lz, &lt, xopts);
  XLogClient client(sim, &lz, &xlog, nullptr, copts);
  xlog.Start();
  client.Start();
  const int kRecords = 2500;
  bool done = false;
  Spawn(sim, Wrap([](XLogClient* c, int n) -> Task<> {
          for (int i = 0; i < n; i++) {
            c->Append(InsertRecord(2, i, 400));
            if (i % 25 == 24) (void)co_await c->Flush();
          }
          (void)co_await c->Flush();
        }(&client, kRecords),
        &done));
  while (!done && sim.Step()) {
  }
  // Let repairs settle so the broker reaches the log end.
  sim.RunFor(10LL * 1000 * 1000);
  ASSERT_EQ(xlog.available().value(), client.end_lsn());

  std::vector<uint64_t> keys;
  bool cdone = false;
  Spawn(sim, Wrap([](Simulator* s, XLogProcess* x, Lsn target,
                     std::vector<uint64_t>* out) -> Task<> {
          Lsn pos = kLogStreamStart;
          while (pos < target) {
            auto blocks = co_await x->Pull(pos, std::nullopt, 512 * KiB);
            if (!blocks.ok() || blocks->empty()) {
              co_await sim::Delay(*s, 5000);
              continue;
            }
            for (auto& b : *blocks) {
              (void)engine::ForEachRecord(
                  Slice(b.payload()), b.start_lsn, [&](Lsn lsn, Slice p) {
                    if (lsn >= pos) {
                      LogRecord rec;
                      if (LogRecord::Decode(p, &rec).ok() &&
                          rec.type == LogRecordType::kLeafInsert) {
                        out->push_back(rec.key);
                      }
                    }
                    return true;
                  });
              pos = b.start_lsn + b.payload_size;
            }
          }
        }(&sim, &xlog, client.end_lsn(), &keys),
        &cdone));
  while (!cdone && sim.Step()) {
  }
  ASSERT_TRUE(cdone);
  ASSERT_EQ(keys.size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; i++) {
    EXPECT_EQ(keys[i], static_cast<uint64_t>(i));
  }
}


TEST(XLogPipelineTest, FullLandingZoneStallsThenRecovers) {
  // §4.3: "Socrates cannot process any update transactions once the LZ
  // is full with log records that have not been destaged yet." A tiny LZ
  // over a slow XStore must stall the writer, then recover as destaging
  // frees space — without losing a byte.
  Simulator sim;
  xstore::XStore lt(sim, sim::DeviceProfile::XStore(),
                    /*bandwidth_mb_s=*/1.0);  // extremely slow archive
  LandingZone lz(sim, sim::DeviceProfile::DirectDrive(), 96 * KiB);
  XLogOptions xopts;
  XLogProcess xlog(sim, &lz, &lt, xopts);
  XLogClient client(sim, &lz, &xlog, nullptr, {});
  xlog.Start();
  client.Start();
  const int kRecords = 600;  // ~370 KB >> LZ capacity
  bool done = false;
  Spawn(sim, Wrap([](XLogClient* c, int n) -> Task<> {
          for (int i = 0; i < n; i++) {
            c->Append(InsertRecord(1, i, 600));
            if (i % 20 == 19) (void)co_await c->Flush();
          }
          (void)co_await c->Flush();
        }(&client, kRecords),
        &done));
  long guard = 0;
  while (!done && sim.Step()) {
    if (++guard > 100000000) break;
  }
  ASSERT_TRUE(done) << "writer never finished (LZ deadlock)";
  EXPECT_GT(client.lz_stalls(), 0u);  // backpressure engaged
  // Everything eventually hardened and nothing was lost.
  EXPECT_EQ(client.hardened_lsn(), client.end_lsn());
  sim.RunFor(300LL * 1000 * 1000);
  EXPECT_EQ(xlog.destaged_lsn(), client.end_lsn());
  std::string lt_bytes = lt.ReadRaw(
      "log/lt", 0, client.end_lsn() - kLogStreamStart);
  int seen = 0;
  (void)engine::ForEachRecord(Slice(lt_bytes), kLogStreamStart,
                              [&](Lsn, Slice) {
                                seen++;
                                return true;
                              });
  EXPECT_EQ(seen, kRecords);
}

}  // namespace
}  // namespace xlog
}  // namespace socrates
