// Golden-trace determinism: the substrate refactor (timing-wheel event
// core, pooled coroutine frames, zero-copy pages, shared log blocks) is
// held to a bit-for-bit determinism contract. Every executed event folds
// its (virtual time, sequence) into the simulator's trace hash; the same
// seed must produce the identical hash on every run — with and without a
// chaos fault schedule running against the deployment.

#include <gtest/gtest.h>

#include <string>

#include "chaos/fault_plan.h"
#include "service/cluster_monitor.h"
#include "service/deployment.h"

namespace socrates {
namespace service {
namespace {

using engine::Engine;
using engine::MakeKey;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  int guard = 0;
  while (!done && s.Step()) {
    if (++guard > 400000000) break;
  }
  ASSERT_TRUE(done) << "driver task did not finish";
}

// One full deployment run: start, commit a seeded workload, read it
// back, stop. Returns the folded event-trace hash.
uint64_t RunWorkloadTrace(uint64_t seed) {
  Simulator s;
  s.EnableTraceHash();
  DeploymentOptions o;
  o.partition_map.pages_per_partition = 1024;
  o.num_page_servers = 2;
  o.num_secondaries = 1;
  o.compute.mem_pages = 48;
  o.compute.ssd_pages = 128;
  Deployment d(s, o);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    Engine* e = d.primary_engine();
    for (uint64_t k = 0; k < 200; k++) {
      auto txn = e->Begin();
      // Value size depends on the seed so different seeds produce a
      // different log volume (and thus a different event schedule).
      std::string val(8 + (seed * 7 + k) % 96, 'v');
      (void)e->Put(txn.get(), MakeKey(1, (seed + k) % 300), val);
      (void)co_await e->Commit(txn.get());
    }
    for (uint64_t k = 0; k < 50; k++) {
      auto txn = e->Begin();
      auto got = co_await e->Get(txn.get(), MakeKey(1, (seed + k) % 300));
      (void)got;
    }
    co_await d.page_server(0)->applied_lsn().WaitFor(
        d.log_client().end_lsn());
  });
  d.Stop();
  s.Run();
  return s.trace_hash();
}

// Same shape as the chaos soak: window faults (partitions, flaky links,
// gray latency) scheduled from a seeded FaultPlan while the workload
// commits, with the monitor repairing damage.
uint64_t RunChaosTrace(uint64_t seed) {
  Simulator s;
  s.EnableTraceHash();
  DeploymentOptions o;
  o.partition_map.pages_per_partition = 512;
  o.num_page_servers = 2;
  o.num_secondaries = 1;
  o.compute.mem_pages = 48;
  o.compute.ssd_pages = 128;
  o.page_server.checkpoint_interval_us = 150 * 1000;
  Deployment d(s, o);

  chaos::RandomPlanOptions ro;
  ro.num_page_servers = 2;
  ro.num_secondaries = 1;
  ro.events = 6;
  ro.start_us = 150 * 1000;
  ro.horizon_us = 900 * 1000;
  ro.crashes = false;  // window faults only; crash timing is test-driven
  chaos::FaultPlan plan = chaos::FaultPlan::Random(seed, ro);

  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    d.EnableMonitor(MonitorOptions{});
    chaos::SchedulePlan(s, plan, d.ChaosTargets());
    const SimTime end = plan.end_us() + 100 * 1000;
    uint64_t k = 0;
    while (s.now() < end) {
      if (d.primary() != nullptr && d.primary()->alive()) {
        Engine* e = d.primary_engine();
        auto txn = e->Begin();
        (void)e->Put(txn.get(), MakeKey(1, k % 200),
                     "c" + std::to_string(k));
        (void)co_await e->Commit(txn.get());
        k++;
      }
      co_await sim::Delay(s, 2000);
    }
  });
  d.Stop();
  s.Run();
  return s.trace_hash();
}

TEST(GoldenTrace, WorkloadTraceIdenticalAcrossRuns) {
  const uint64_t h1 = RunWorkloadTrace(7);
  const uint64_t h2 = RunWorkloadTrace(7);
  const uint64_t h3 = RunWorkloadTrace(7);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2, h3);
  // And the hash actually depends on the workload (not a constant).
  EXPECT_NE(h1, RunWorkloadTrace(8));
}

TEST(GoldenTrace, ChaosTraceIdenticalAcrossRuns) {
  const uint64_t h1 = RunChaosTrace(3);
  const uint64_t h2 = RunChaosTrace(3);
  const uint64_t h3 = RunChaosTrace(3);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2, h3);
  EXPECT_NE(h1, RunChaosTrace(4));
}

}  // namespace
}  // namespace service
}  // namespace socrates
