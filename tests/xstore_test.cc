// Tests for the simulated XStore blob store: extent-map correctness under
// overlapping writes (property-tested against a byte-array model), O(1)
// snapshot/restore semantics, outage behaviour, and the constant-time
// claim itself (snapshot latency independent of blob size).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "xstore/xstore.h"

namespace socrates {
namespace xstore {
namespace {

using sim::Simulator;
using sim::Spawn;
using sim::Task;

// Drive a coroutine to completion on a fresh simulator.
template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  Spawn(s, fn());
  s.Run();
}

TEST(XStoreTest, WriteReadRoundTrip) {
  Simulator s;
  XStore xs(s);
  Status ws, rs;
  std::string got;
  RunSim(s, [&]() -> Task<> {
    ws = co_await xs.Write("blob1", 100, Slice("hello xstore"));
    rs = co_await xs.Read("blob1", 100, 12, &got);
  });
  EXPECT_TRUE(ws.ok());
  EXPECT_TRUE(rs.ok());
  EXPECT_EQ(got, "hello xstore");
  EXPECT_EQ(xs.BlobSize("blob1"), 112u);
}

TEST(XStoreTest, ReadMissingBlobIsNotFound) {
  Simulator s;
  XStore xs(s);
  Status rs;
  std::string got;
  RunSim(s, [&]() -> Task<> {
    rs = co_await xs.Read("nope", 0, 4, &got);
  });
  EXPECT_TRUE(rs.IsNotFound());
}

TEST(XStoreTest, UnwrittenGapsReadAsZero) {
  Simulator s;
  XStore xs(s);
  std::string got;
  RunSim(s, [&]() -> Task<> {
    (void)co_await xs.Write("b", 0, Slice("AA"));
    (void)co_await xs.Write("b", 10, Slice("BB"));
    (void)co_await xs.Read("b", 0, 12, &got);
  });
  std::string expect = "AA";
  expect += std::string(8, '\0');
  expect += "BB";
  EXPECT_EQ(got, expect);
}

TEST(XStoreTest, OverwriteMiddle) {
  Simulator s;
  XStore xs(s);
  std::string got;
  RunSim(s, [&]() -> Task<> {
    (void)co_await xs.Write("b", 0, Slice("abcdefghij"));
    (void)co_await xs.Write("b", 3, Slice("XYZ"));
    (void)co_await xs.Read("b", 0, 10, &got);
  });
  EXPECT_EQ(got, "abcXYZghij");
}

TEST(XStoreTest, OverwriteSpanningMultipleExtents) {
  Simulator s;
  XStore xs(s);
  std::string got;
  RunSim(s, [&]() -> Task<> {
    (void)co_await xs.Write("b", 0, Slice("aaaa"));
    (void)co_await xs.Write("b", 4, Slice("bbbb"));
    (void)co_await xs.Write("b", 8, Slice("cccc"));
    (void)co_await xs.Write("b", 2, Slice("ZZZZZZZZ"));  // covers parts of all
    (void)co_await xs.Read("b", 0, 12, &got);
  });
  EXPECT_EQ(got, "aaZZZZZZZZcc");
}

// Property test: random overlapping writes against a plain byte-array
// model. This is the load-bearing test for the extent map.
TEST(XStorePropertyTest, RandomWritesMatchModel) {
  Simulator s;
  XStore xs(s);
  Random rng(2024);
  const uint64_t kSpace = 4096;
  std::string model(kSpace, '\0');
  RunSim(s, [&]() -> Task<> {
    for (int i = 0; i < 500; i++) {
      uint64_t off = rng.Uniform(kSpace - 1);
      uint64_t len = 1 + rng.Uniform(std::min<uint64_t>(kSpace - off, 200));
      std::string data(len, '\0');
      for (auto& c : data) {
        c = static_cast<char>('a' + rng.Uniform(26));
      }
      (void)co_await xs.Write("prop", off, Slice(data));
      memcpy(model.data() + off, data.data(), len);
      if (i % 50 == 0) {
        std::string got;
        (void)co_await xs.Read("prop", 0, kSpace, &got);
        EXPECT_EQ(got, model) << "divergence after write " << i;
      }
    }
    std::string got;
    (void)co_await xs.Read("prop", 0, kSpace, &got);
    EXPECT_EQ(got, model);
  });
}

TEST(XStoreTest, SnapshotIsolatesFromLaterWrites) {
  Simulator s;
  XStore xs(s);
  SnapshotId snap = 0;
  std::string before, after, restored;
  RunSim(s, [&]() -> Task<> {
    (void)co_await xs.Write("db", 0, Slice("version-1"));
    auto r = co_await xs.Snapshot("db");
    snap = *r;
    (void)co_await xs.Write("db", 0, Slice("version-2"));
    (void)co_await xs.Read("db", 0, 9, &after);
    (void)co_await xs.Restore(snap, "db-restored");
    (void)co_await xs.Read("db-restored", 0, 9, &restored);
  });
  EXPECT_EQ(after, "version-2");
  EXPECT_EQ(restored, "version-1");
}

TEST(XStoreTest, RestoredBlobIsIndependent) {
  Simulator s;
  XStore xs(s);
  std::string orig, rest;
  RunSim(s, [&]() -> Task<> {
    (void)co_await xs.Write("a", 0, Slice("base"));
    auto r = co_await xs.Snapshot("a");
    (void)co_await xs.Restore(*r, "b");
    (void)co_await xs.Write("b", 0, Slice("fork"));
    (void)co_await xs.Read("a", 0, 4, &orig);
    (void)co_await xs.Read("b", 0, 4, &rest);
  });
  EXPECT_EQ(orig, "base");
  EXPECT_EQ(rest, "fork");
}

TEST(XStoreTest, SnapshotOfMissingBlobFails) {
  Simulator s;
  XStore xs(s);
  Status st;
  RunSim(s, [&]() -> Task<> {
    auto r = co_await xs.Snapshot("ghost");
    st = r.status();
  });
  EXPECT_TRUE(st.IsNotFound());
}

// The headline property: snapshot time must not depend on blob size.
TEST(XStoreTest, SnapshotLatencyIndependentOfSize) {
  Simulator s;
  XStore xs(s);
  SimTime small_t = 0, big_t = 0;
  RunSim(s, [&]() -> Task<> {
    (void)co_await xs.Write("small", 0, Slice("x"));
    std::string big(2 * MiB, 'y');
    for (int i = 0; i < 8; i++) {
      (void)co_await xs.Write("big", i * big.size(), Slice(big));
    }
    SimTime t0 = s.now();
    (void)co_await xs.Snapshot("small");
    small_t = s.now() - t0;
    t0 = s.now();
    (void)co_await xs.Snapshot("big");
    big_t = s.now() - t0;
  });
  EXPECT_EQ(small_t, big_t);  // both exactly kMetaOpLatencyUs
  EXPECT_EQ(big_t, XStore::kMetaOpLatencyUs);
}

TEST(XStoreTest, TransferTimeScalesWithSize) {
  Simulator s;
  XStore xs(s, sim::DeviceProfile::XStore(), /*bandwidth_mb_s=*/100.0);
  SimTime small_t = 0, big_t = 0;
  RunSim(s, [&]() -> Task<> {
    std::string big(8 * MiB, 'b');
    SimTime t0 = s.now();
    (void)co_await xs.Write("b", 0, Slice("tiny"));
    small_t = s.now() - t0;
    t0 = s.now();
    (void)co_await xs.Write("b", 0, Slice(big));
    big_t = s.now() - t0;
  });
  // 8 MiB at 100 MB/s ~ 84 ms of transfer alone; far above base latency.
  EXPECT_GT(big_t, 5 * small_t);
  EXPECT_GT(big_t, 70000);
}

TEST(XStoreTest, OutageFailsEverything) {
  Simulator s;
  XStore xs(s);
  Status w0, w1, r1, snap_st;
  std::string got;
  RunSim(s, [&]() -> Task<> {
    w0 = co_await xs.Write("b", 0, Slice("pre"));
    xs.SetAvailable(false);
    w1 = co_await xs.Write("b", 0, Slice("during"));
    r1 = co_await xs.Read("b", 0, 3, &got);
    auto r = co_await xs.Snapshot("b");
    snap_st = r.status();
    xs.SetAvailable(true);
    r1 = co_await xs.Read("b", 0, 3, &got);
  });
  EXPECT_TRUE(w0.ok());
  EXPECT_TRUE(w1.IsUnavailable());
  EXPECT_TRUE(snap_st.IsUnavailable());
  EXPECT_TRUE(r1.ok());
  EXPECT_EQ(got, "pre");  // failed write left no trace
}

TEST(XStoreTest, DeleteAndList) {
  Simulator s;
  XStore xs(s);
  RunSim(s, [&]() -> Task<> {
    (void)co_await xs.Write("db/p0", 0, Slice("x"));
    (void)co_await xs.Write("db/p1", 0, Slice("y"));
    (void)co_await xs.Write("log/lt", 0, Slice("z"));
    (void)co_await xs.Delete("db/p0");
  });
  EXPECT_FALSE(xs.Exists("db/p0"));
  EXPECT_TRUE(xs.Exists("db/p1"));
  auto names = xs.List("db/");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "db/p1");
  EXPECT_EQ(xs.List("").size(), 2u);
}

TEST(XStoreTest, StoredBytesAccountsAppends) {
  Simulator s;
  XStore xs(s);
  RunSim(s, [&]() -> Task<> {
    (void)co_await xs.Write("b", 0, Slice("aaaa"));
    (void)co_await xs.Write("b", 0, Slice("bbbb"));  // overwrite still appends
  });
  EXPECT_EQ(xs.stored_bytes(), 8u);  // log-structured: both versions stored
}

}  // namespace
}  // namespace xstore
}  // namespace socrates
