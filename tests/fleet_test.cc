// Multi-tenant fleet tests: tenant directory routing, gateway QoS
// isolation, per-(tenant, host) overload backoff, live partition
// migration with directory-epoch route invalidation, chaos injected
// mid-migration (routes must never be left broken, data must never leak
// across tenants), and golden-trace determinism of a fleet run that
// includes a migration.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fleet/fleet.h"

namespace socrates {
namespace fleet {
namespace {

using engine::Engine;
using engine::MakeKey;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  int guard = 0;
  while (!done && s.Step()) {
    if (++guard > 400000000) break;
  }
  ASSERT_TRUE(done) << "driver task did not finish";
}

FleetOptions SmallFleet(int tenants = 2, int hosts = 2) {
  FleetOptions o;
  o.tenants = tenants;
  o.hosts = hosts;
  o.lz_hosts = 2;
  o.tenant.partition_map.pages_per_partition = 256;
  o.tenant.num_page_servers = 2;
  o.tenant.compute.mem_pages = 64;
  o.tenant.compute.ssd_pages = 256;
  o.tenant.page_server.mem_pages = 64;
  o.tenant.page_server.checkpoint_interval_us = 200 * 1000;
  // Cold restarts: after RestartPrimary the compute caches start empty,
  // so reads actually traverse the gateway to the Page Servers (the
  // tiny test rows would otherwise live entirely in local caches).
  o.tenant.compute.warmup_after_recovery = false;
  o.tenant.compute.rbpex_recoverable = false;
  return o;
}

// Checkpoint (bounds replay) then cold-restart the primary so its
// caches are empty and every subsequent read misses to the gateway.
Task<> ColdRestart(service::Deployment* d) {
  (void)co_await d->Checkpoint();
  Status s = co_await d->RestartPrimary();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

Task<> LoadRows(Engine* e, uint64_t start, uint64_t n,
                const std::string& prefix) {
  for (uint64_t i = start; i < start + n; i += 8) {
    auto txn = e->Begin();
    for (uint64_t k = i; k < std::min(start + n, i + 8); k++) {
      (void)e->Put(txn.get(), MakeKey(1, k), prefix + std::to_string(k));
    }
    Status s = co_await e->Commit(txn.get());
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

Task<> VerifyRows(Engine* e, uint64_t start, uint64_t n,
                  const std::string& prefix) {
  auto txn = e->Begin(true);
  for (uint64_t k = start; k < start + n; k++) {
    auto v = co_await e->Get(txn.get(), MakeKey(1, k));
    EXPECT_TRUE(v.ok()) << "key " << k << ": " << v.status().ToString();
    if (v.ok()) {
      EXPECT_EQ(*v, prefix + std::to_string(k));
    }
  }
  (void)co_await e->Commit(txn.get());
}

// Every tenant routes through its own gateway ports to its own Page
// Servers over the shared pools, and nothing a tenant persists escapes
// its blob namespace.
TEST(FleetTest, RoutingAndTenantIsolation) {
  Simulator s;
  Fleet f(s, SmallFleet(3, 2));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await f.Start()).ok());
    for (int t = 0; t < f.num_tenants(); t++) {
      co_await LoadRows(f.tenant(t)->primary_engine(), 0, 80,
                        "t" + std::to_string(t) + "-");
    }
    for (int t = 0; t < f.num_tenants(); t++) {
      co_await ColdRestart(f.tenant(t));
      co_await VerifyRows(f.tenant(t)->primary_engine(), 0, 80,
                          "t" + std::to_string(t) + "-");
    }
  });
  // All RBIO traffic went through the gateway.
  EXPECT_GT(f.gateway().frames_forwarded(), 0u);
  // Blob namespace isolation: every blob in the shared XStore lives
  // under exactly one tenant's prefix — nothing un-namespaced.
  std::vector<std::string> all = f.xstore().List("");
  EXPECT_FALSE(all.empty());
  for (const std::string& blob : all) {
    bool owned = false;
    for (int t = 0; t < f.num_tenants(); t++) {
      if (blob.rfind("t" + std::to_string(t) + "/", 0) == 0) {
        owned = true;
        break;
      }
    }
    EXPECT_TRUE(owned) << "blob outside any tenant namespace: " << blob;
  }
  for (int t = 0; t < f.num_tenants(); t++) {
    EXPECT_FALSE(f.xstore().List("t" + std::to_string(t) + "/").empty());
  }
  f.Stop();
}

// Live migration moves a partition between hosts; the directory epoch
// bump invalidates every cached route, readers re-resolve and keep
// reading correct data with zero terminal failures.
TEST(FleetTest, MigrationInvalidatesRoutesAndPreservesData) {
  Simulator s;
  FleetOptions o = SmallFleet(2, 2);
  // Tiny compute caches: reads keep going to the Page Servers, so the
  // migrated route is actually exercised after cutover.
  o.tenant.compute.mem_pages = 8;
  o.tenant.compute.ssd_pages = 16;
  Fleet f(s, o);
  uint64_t epoch_before = 0;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await f.Start()).ok());
    co_await LoadRows(f.tenant(0)->primary_engine(), 0, 120, "a");
    co_await LoadRows(f.tenant(1)->primary_engine(), 0, 60, "b");
    // Cold compute: the pre-migration verify flows through the gateway
    // ports, caching the pre-migration route (epoch) in each port.
    co_await ColdRestart(f.tenant(0));
    co_await VerifyRows(f.tenant(0)->primary_engine(), 0, 120, "a");

    epoch_before = f.directory().RouteEpoch(0);
    const int src = f.HostOf(0, 0);
    EXPECT_GE(src, 0);
    const int dst = f.LeastLoadedHost(src);
    EXPECT_NE(src, dst);
    Status ms = co_await f.Migrate(0, 0, dst);
    EXPECT_TRUE(ms.ok()) << ms.ToString();
    EXPECT_EQ(f.HostOf(0, 0), dst);

    // Cold again: reads must go back out the ports, hit the stale cached
    // route, and re-resolve through the bumped directory epoch.
    co_await ColdRestart(f.tenant(0));
    co_await VerifyRows(f.tenant(0)->primary_engine(), 0, 120, "a");
    co_await VerifyRows(f.tenant(1)->primary_engine(), 0, 60, "b");
  });
  EXPECT_EQ(f.migrations(), 1u);
  EXPECT_GT(f.directory().RouteEpoch(0), epoch_before);
  // The migrated tenant's ports re-resolved after the epoch bump; the
  // untouched tenant's routes were never invalidated.
  EXPECT_GT(f.gateway().qos(0).route_refreshes, 0u);
  EXPECT_EQ(f.gateway().qos(1).route_refreshes, 0u);
  // The serving server for the partition now runs on the destination
  // host's shared CPU.
  EXPECT_EQ(f.directory().Resolve(0, 0)->host_load(),
            &f.host(f.HostOf(0, 0)).load);
  f.Stop();
}

// An abusive tenant saturating its scan quota is shed at the gateway;
// the victim tenant's point reads are never shed and never fail.
TEST(FleetTest, QosShedsAbusiveTenantNotVictim) {
  Simulator s;
  FleetOptions o = SmallFleet(2, 1);  // both tenants on one host
  o.tenant.num_page_servers = 1;
  // Tiny compute caches: point reads keep missing to the gateway.
  o.tenant.compute.mem_pages = 8;
  o.tenant.compute.ssd_pages = 16;
  // Make pushdown always try the wire so scans reach the gateway.
  o.tenant.compute.pushdown_max_selectivity = 1.0;
  o.tenant.compute.pushdown_cost_planning = false;
  // A starved scan quota: the first scans fit the burst, sustained
  // scanning overdrafts it past the wait bound and sheds.
  o.gateway.tenant_tokens_per_s = 1000;
  o.gateway.tenant_burst = 32;
  o.gateway.scan_cost = 16.0;
  o.gateway.max_scan_wait_us = 10 * 1000;
  Fleet f(s, o);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await f.Start()).ok());
    co_await LoadRows(f.tenant(0)->primary_engine(), 0, 400, "v");
    co_await LoadRows(f.tenant(1)->primary_engine(), 0, 400, "w");
    // Cold victim compute: its point reads miss to the gateway.
    co_await ColdRestart(f.tenant(0));

    // Abuser: tenant 1 scans in a tight loop.
    Engine* abuser = f.tenant(1)->primary_engine();
    engine::ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(10, 0);
    filter.aggregate = common::ScanAggregate::Sum(0);
    for (int round = 0; round < 24; round++) {
      auto txn = abuser->Begin(true);
      auto r = co_await abuser->ScanWhere(txn.get(), MakeKey(1, 0),
                                          MakeKey(1, 400), 0, filter);
      EXPECT_TRUE(r.ok());  // shed scans fall back to the local plan
      (void)co_await abuser->Commit(txn.get());
    }
    // Victim: point reads throughout — all must succeed.
    co_await VerifyRows(f.tenant(0)->primary_engine(), 0, 400, "v");
  });
  const TenantQos& victim = f.gateway().qos(0);
  const TenantQos& noisy = f.gateway().qos(1);
  EXPECT_GT(noisy.scans_shed_quota + noisy.scans_shed_backoff, 0u);
  EXPECT_EQ(victim.scans_shed_quota, 0u);
  EXPECT_EQ(victim.scans_shed_backoff, 0u);
  EXPECT_GT(victim.points_forwarded, 0u);
  f.Stop();
}

// A Page Server shedding one tenant's scan (host admission control)
// earns a backoff window scoped to that (tenant, host) pair — at the
// gateway and in that tenant's own RBIO client — while the other
// tenant's scans still flow.
TEST(FleetTest, OverloadBackoffIsScopedPerTenant) {
  Simulator s;
  FleetOptions o = SmallFleet(2, 1);
  o.tenant.num_page_servers = 1;
  // Tiny compute caches: reads miss to the server, filling its GetPage
  // latency window (the admission health signal needs >= 16 samples).
  o.tenant.compute.mem_pages = 8;
  o.tenant.compute.ssd_pages = 16;
  o.tenant.compute.pushdown_max_selectivity = 1.0;
  o.tenant.compute.pushdown_cost_planning = false;
  // No readahead/prefetch: every miss is a single kGetPage frame, which
  // is what feeds the server's point-read latency ring (the admission
  // health signal ignores range/batch prefetch traffic).
  o.tenant.compute.scan_readahead = 0;
  o.tenant.compute.readahead_pages = 0;
  // Server-side admission trips on any measurable tail once the latency
  // window fills, and sheds immediately (no tokens): a deterministic
  // kOverloaded for every admitted-by-the-gateway scan.
  o.tenant.page_server.scan_admission_enabled = true;
  o.tenant.page_server.scan_admission_getpage_depth = 0;
  o.tenant.page_server.scan_admission_p99_us = 1;
  o.tenant.page_server.scan_admission_tokens_per_s = 0;
  // Gateway quota wide open: only the backoff machinery acts.
  o.gateway.tenant_tokens_per_s = 1e6;
  o.gateway.tenant_burst = 1e6;
  Fleet f(s, o);
  // Long payloads spread the rows over dozens of leaves: the cold
  // verify then yields well over the 16 single-GetPage samples the
  // admission p99 signal requires.
  const std::string v_pad(200, 'v');
  const std::string w_pad(200, 'w');
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await f.Start()).ok());
    co_await LoadRows(f.tenant(0)->primary_engine(), 0, 400, v_pad);
    co_await LoadRows(f.tenant(1)->primary_engine(), 0, 400, w_pad);
    // Fill the server's GetPage latency window so admission has a p99
    // signal (>= 16 samples), via cold cache-missing reads.
    co_await ColdRestart(f.tenant(0));
    co_await VerifyRows(f.tenant(0)->primary_engine(), 0, 400, v_pad);

    engine::ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(10, 0);
    filter.aggregate = common::ScanAggregate::Sum(0);
    // Tenant 0 scans twice: the first is forwarded and shed by the
    // server (earning the (t0, host) backoff), the second short-circuits
    // at the gateway.
    Engine* e0 = f.tenant(0)->primary_engine();
    for (int i = 0; i < 2; i++) {
      auto txn = e0->Begin(true);
      auto r = co_await e0->ScanWhere(txn.get(), MakeKey(1, 0),
                                      MakeKey(1, 400), 0, filter);
      EXPECT_TRUE(r.ok());
      (void)co_await e0->Commit(txn.get());
    }
    EXPECT_GE(f.gateway().qos(0).scans_forwarded, 1u);

    // Tenant 1's client never scanned: its per-(tenant, endpoint) state
    // is untouched — no backoff inherited from tenant 0's abuse.
    EXPECT_EQ(f.tenant(1)->primary()->rbio_client().ScanBackoffRemainingUs(
                  "t1/gw-ps-0|"),
              0u);
    // Tenant 0's own client is in its (tenant, endpoint) backoff window
    // after the server's kOverloaded reply.
    EXPECT_GT(f.tenant(0)->primary()->rbio_client().ScanBackoffRemainingUs(
                  "t0/gw-ps-0|"),
              0u);
  });
  // The gateway recorded the backoff for tenant 0 only.
  EXPECT_FALSE(f.gateway().qos(0).scan_backoff_until.empty());
  EXPECT_TRUE(f.gateway().qos(1).scan_backoff_until.empty());
  f.Stop();
}

// Chaos mid-migration: whatever faults fire — destination host outage,
// source server crash, shared-XStore or LZ outage windows — a migration
// either completes or aborts with the incumbent serving; routes are
// never left broken, reads after the dust settles return every tenant's
// own data, and nothing crosses tenants.
TEST(FleetTest, MidMigrationChaosNeverBreaksRoutesOrLeaksData) {
  for (uint64_t seed = 1; seed <= 4; seed++) {
    Simulator s;
    FleetOptions o = SmallFleet(2, 2);
    o.tenant.compute.mem_pages = 8;
    o.tenant.compute.ssd_pages = 16;
    Fleet f(s, o);
    RunSim(s, [&]() -> Task<> {
      EXPECT_TRUE((co_await f.Start()).ok());
      co_await LoadRows(f.tenant(0)->primary_engine(), 0, 100, "a");
      co_await LoadRows(f.tenant(1)->primary_engine(), 0, 100, "b");
      (void)co_await f.tenant(0)->Checkpoint();

      const int src = f.HostOf(0, 0);
      const int dst = f.LeastLoadedHost(src);
      const std::string dst_site = f.host(dst).site;

      // Fire a seed-chosen fault while the migration runs.
      Random rng(seed * 0x9e3779b97f4a7c15ull);
      const int kind = static_cast<int>(rng.Uniform(4));
      Spawn(s, [](Simulator* sim, Fleet* fleet, int kind,
                  std::string dst_site) -> Task<> {
        co_await sim::Delay(*sim, 500);  // mid-migration
        switch (kind) {
          case 0:  // destination host outage window
            fleet->chaos().SetOutage(dst_site, true);
            co_await sim::Delay(*sim, 30 * 1000);
            fleet->chaos().SetOutage(dst_site, false);
            break;
          case 1:  // source server crashes mid-catch-up
            fleet->tenant(0)->CrashPageServer(0);
            break;
          case 2:  // shared XStore blips
            fleet->chaos().SetOutage("xstore", true);
            co_await sim::Delay(*sim, 20 * 1000);
            fleet->chaos().SetOutage("xstore", false);
            break;
          default:  // tenant 0's LZ host blips
            fleet->chaos().SetOutage("lzhost-0", true);
            co_await sim::Delay(*sim, 20 * 1000);
            fleet->chaos().SetOutage("lzhost-0", false);
            break;
        }
      }(&s, &f, kind, dst_site));

      Status ms = co_await f.Migrate(0, 0, dst);
      // Either outcome is legal; broken state is not.
      (void)ms;
      f.chaos().Clear();
      // The source server may have been crashed (kind 1) and the
      // migration lost the race — recover whoever is down so the fleet
      // is serving again, as the monitor would.
      for (int p = 0; p < f.tenant(0)->num_page_servers(); p++) {
        if (!f.tenant(0)->ServingPageServer(p)->running()) {
          Status rs = co_await f.tenant(0)->RecoverPageServer(p);
          EXPECT_TRUE(rs.ok()) << rs.ToString();
        }
      }
      co_await sim::Delay(s, 50 * 1000);

      // No broken routes: every key of both tenants reads back, with
      // the right tenant's value — no cross-tenant leakage.
      co_await VerifyRows(f.tenant(0)->primary_engine(), 0, 100, "a");
      co_await VerifyRows(f.tenant(1)->primary_engine(), 0, 100, "b");
    });
    // Blob namespaces stayed disjoint under chaos.
    for (const std::string& blob : f.xstore().List("")) {
      EXPECT_TRUE(blob.rfind("t0/", 0) == 0 || blob.rfind("t1/", 0) == 0)
          << "blob outside tenant namespaces: " << blob;
    }
    f.Stop();
  }
}

// Fleet golden trace: a multi-tenant run — shared pools, gateway QoS,
// one live migration — is bit-for-bit deterministic, and the trace is
// sensitive to the seed.
uint64_t RunFleetTrace(uint64_t seed) {
  Simulator s;
  s.EnableTraceHash();
  FleetOptions o = SmallFleet(2, 2);
  o.tenant.compute.mem_pages = 32;
  o.tenant.compute.ssd_pages = 64;
  Fleet f(s, o);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await f.Start()).ok());
    for (int t = 0; t < f.num_tenants(); t++) {
      Engine* e = f.tenant(t)->primary_engine();
      for (uint64_t k = 0; k < 120; k++) {
        auto txn = e->Begin();
        std::string val(8 + (seed * 7 + k) % 96, 'v');
        (void)e->Put(txn.get(), MakeKey(1, (seed + k) % 200), val);
        (void)co_await e->Commit(txn.get());
      }
    }
    const int dst = f.LeastLoadedHost(f.HostOf(0, 0));
    EXPECT_TRUE((co_await f.Migrate(0, 0, dst)).ok());
    for (int t = 0; t < f.num_tenants(); t++) {
      Engine* e = f.tenant(t)->primary_engine();
      for (uint64_t k = 0; k < 40; k++) {
        auto txn = e->Begin(true);
        (void)co_await e->Get(txn.get(), MakeKey(1, (seed + k) % 200));
        (void)co_await e->Commit(txn.get());
      }
    }
  });
  f.Stop();
  s.Run();
  return s.trace_hash();
}

TEST(FleetGoldenTrace, IdenticalAcrossRunsAndSeedSensitive) {
  const uint64_t a = RunFleetTrace(7);
  const uint64_t b = RunFleetTrace(7);
  const uint64_t c = RunFleetTrace(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_NE(a, RunFleetTrace(8));
}

}  // namespace
}  // namespace fleet
}  // namespace socrates
