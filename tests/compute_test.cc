// Unit tests for compute-tier building blocks: the evicted-LSN map's
// conservativeness (the §4.4 safety argument), partition routing, and
// geo-replica option construction.

#include <gtest/gtest.h>

#include "compute/compute_node.h"

namespace socrates {
namespace compute {
namespace {

TEST(EvictedLsnMapTest, ConservativeUnderCollisions) {
  // The map may overestimate (bucket max) but must never underestimate:
  // Get(p) >= the last Update(p, lsn) for every page.
  EvictedLsnMap map(/*buckets=*/64);  // tiny: lots of collisions
  Random rng(5);
  std::map<PageId, Lsn> truth;
  for (int i = 0; i < 10000; i++) {
    PageId page = rng.Uniform(5000);
    Lsn lsn = rng.Uniform(1u << 30);
    map.Update(page, lsn);
    Lsn& t = truth[page];
    t = std::max(t, lsn);
  }
  for (auto& [page, lsn] : truth) {
    EXPECT_GE(map.Get(page), lsn) << "page " << page;
  }
}

TEST(EvictedLsnMapTest, NeverEvictedIsInvalid) {
  EvictedLsnMap map;
  EXPECT_EQ(map.Get(12345), kInvalidLsn);
  map.Update(12345, 77);
  EXPECT_GE(map.Get(12345), 77u);
  map.Clear();
  EXPECT_EQ(map.Get(12345), kInvalidLsn);
}

TEST(EvictedLsnMapTest, MonotoneNonDecreasing) {
  EvictedLsnMap map(16);
  map.Update(1, 100);
  map.Update(1, 50);  // older LSN must not lower the bucket
  EXPECT_GE(map.Get(1), 100u);
}

TEST(PartitionMapTest, RangePartitioning) {
  xlog::PartitionMap pm;
  pm.pages_per_partition = 100;
  EXPECT_EQ(pm.PartitionOf(0), 0u);
  EXPECT_EQ(pm.PartitionOf(99), 0u);
  EXPECT_EQ(pm.PartitionOf(100), 1u);
  EXPECT_EQ(pm.PartitionOf(1234), 12u);
  EXPECT_EQ(pm.FirstPage(3), 300u);
  EXPECT_EQ(pm.EndPage(3), 400u);
  for (PageId p = 0; p < 1000; p++) {
    PartitionId part = pm.PartitionOf(p);
    EXPECT_GE(p, pm.FirstPage(part));
    EXPECT_LT(p, pm.EndPage(part));
  }
}

TEST(RouterTest, EndpointsOrderMainFirst) {
  xlog::PartitionMap pm;
  pm.pages_per_partition = 10;
  PageServerRouter router(pm);
  // Page servers are only used via pointer identity here.
  auto* fake_main = reinterpret_cast<pageserver::PageServer*>(0x1000);
  auto* fake_replica = reinterpret_cast<pageserver::PageServer*>(0x2000);
  router.Add(2, fake_main);
  router.AddReplica(2, fake_replica);
  auto eps = router.EndpointsFor(/*page=*/25);  // partition 2
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].name, "ps-2");
  EXPECT_EQ(eps[1].name, "ps-2-r0");
  EXPECT_TRUE(router.EndpointsFor(999).empty());
  EXPECT_EQ(router.ServerFor(25), fake_main);
}

TEST(GeoReplicaOptionsTest, LatencyScalesWithRtt) {
  Random rng(3);
  ComputeOptions near = ComputeOptions::GeoReplica(2000);
  ComputeOptions far = ComputeOptions::GeoReplica(120000);
  double near_sum = 0, far_sum = 0;
  for (int i = 0; i < 200; i++) {
    near_sum += static_cast<double>(near.rpc_latency.Sample(rng));
    far_sum += static_cast<double>(far.rpc_latency.Sample(rng));
  }
  EXPECT_GT(far_sum / 200, 20 * (near_sum / 200));
}

}  // namespace
}  // namespace compute
}  // namespace socrates
