// Seeded chaos soak: a FaultPlan::Random schedule (crashes of every
// tier, partitions, lossy links, gray latency, storage outage windows)
// runs against a monitored deployment while a workload commits rows.
// The monitor must repair every crash with no manual intervention, and
// every acknowledged commit must be readable once the dust settles.
// Fully deterministic per seed — CI runs one seed per matrix job.

#include <gtest/gtest.h>

#include <map>

#include "chaos/fault_plan.h"
#include "service/cluster_monitor.h"
#include "service/deployment.h"

namespace socrates {
namespace service {
namespace {

using engine::Engine;
using engine::MakeKey;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  int guard = 0;
  while (!done && s.Step()) {
    if (++guard > 400000000) break;
  }
  ASSERT_TRUE(done) << "driver task did not finish";
}

class ChaosSoak : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSoak, MonitorKeepsAckedCommitsReadable) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Simulator s;
  DeploymentOptions o;
  o.partition_map.pages_per_partition = 512;
  o.num_page_servers = 2;
  o.num_secondaries = 1;
  o.compute.mem_pages = 48;
  o.compute.ssd_pages = 128;
  o.page_server.checkpoint_interval_us = 150 * 1000;
  Deployment d(s, o);

  chaos::RandomPlanOptions ro;
  ro.num_page_servers = 2;
  ro.num_secondaries = 1;
  ro.events = 6;
  ro.start_us = 150 * 1000;
  ro.horizon_us = 1200 * 1000;
  chaos::FaultPlan plan = chaos::FaultPlan::Random(seed, ro);

  // Split the plan: window/transient events run on the simulator clock
  // under live traffic; crash events are applied by the driver between
  // commits (a VM dies between instructions, not inside the driver's
  // suspended coroutine frame) and repaired by the monitor.
  chaos::FaultPlan windows;
  std::vector<chaos::FaultEvent> crashes;
  for (const chaos::FaultEvent& e : plan.events) {
    switch (e.kind) {
      case chaos::FaultKind::kCrashPrimary:
      case chaos::FaultKind::kCrashSecondary:
      case chaos::FaultKind::kCrashPageServer:
        crashes.push_back(e);
        break;
      default:
        windows.events.push_back(e);
        break;
    }
  }

  std::map<uint64_t, std::string> acked;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    ClusterMonitor* mon = d.EnableMonitor(MonitorOptions{});
    chaos::SchedulePlan(s, windows, d.ChaosTargets());

    const SimTime end = plan.end_us() + 200 * 1000;
    size_t next_crash = 0;
    uint64_t k = 0;
    while (s.now() < end) {
      while (next_crash < crashes.size() &&
             s.now() >= crashes[next_crash].at_us) {
        const chaos::FaultEvent& e = crashes[next_crash++];
        if (e.kind == chaos::FaultKind::kCrashPrimary) {
          d.CrashPrimary();
        } else if (e.kind == chaos::FaultKind::kCrashSecondary) {
          d.CrashSecondary(e.index);
        } else {
          d.CrashPageServer(e.index);
        }
      }
      if (d.primary() != nullptr && d.primary()->alive()) {
        Engine* e = d.primary_engine();
        auto txn = e->Begin();
        std::string val = "s" + std::to_string(seed) + "k" +
                          std::to_string(k);
        (void)e->Put(txn.get(), MakeKey(1, k % 400), val);
        Status cs = co_await e->Commit(txn.get());
        if (cs.ok()) acked[MakeKey(1, k % 400)] = val;
        k++;
      }
      co_await sim::Delay(s, 2000);
    }

    // Convergence: monitor idle, every tier serving.
    for (int i = 0; i < 1000; i++) {
      bool healthy = mon->idle() && d.primary() != nullptr &&
                     d.primary()->alive();
      for (int p = 0; healthy && p < d.num_page_servers(); p++) {
        pageserver::PageServer* serving =
            d.ServingPageServer(static_cast<PartitionId>(p));
        healthy = serving != nullptr && serving->running();
      }
      if (healthy) break;
      co_await sim::Delay(s, 10 * 1000);
    }
    EXPECT_NE(d.primary(), nullptr);
    if (d.primary() == nullptr || !d.primary()->alive()) {
      ADD_FAILURE() << "cluster did not self-heal (seed " << seed << ")";
      d.Stop();
      co_return;
    }
    EXPECT_TRUE(mon->idle());

    // Every acknowledged commit is readable.
    Engine* e = d.primary_engine();
    auto reader = e->Begin(true);
    for (const auto& [key, val] : acked) {
      auto r = co_await e->Get(reader.get(), key);
      EXPECT_TRUE(r.ok()) << "seed " << seed << " key " << key
                          << ": lost acked commit";
      if (r.ok()) {
        EXPECT_EQ(*r, val) << "seed " << seed << " key " << key;
      }
    }
    (void)co_await e->Commit(reader.get());
    EXPECT_GT(acked.size(), 0u);
    d.Stop();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak, ::testing::Range(1, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace service
}  // namespace socrates
