// Tests for pages and simulated block devices: header round-trips,
// checksums, sparse device storage, latency ordering, replication quorum,
// outage behaviour.

#include <gtest/gtest.h>

#include "storage/block_device.h"
#include "storage/page.h"

namespace socrates {
namespace storage {
namespace {

using sim::DeviceProfile;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

// -------------------------------------------------------------------- Page

TEST(PageTest, FormatSetsHeader) {
  Page p;
  p.Format(42, PageType::kBTreeLeaf);
  EXPECT_EQ(p.page_id(), 42u);
  EXPECT_EQ(p.type(), PageType::kBTreeLeaf);
  EXPECT_EQ(p.page_lsn(), kInvalidLsn);
  EXPECT_EQ(p.slot_count(), 0);
  EXPECT_EQ(p.free_offset(), kPageHeaderSize);
}

TEST(PageTest, HeaderFieldRoundTrips) {
  Page p;
  p.Format(7, PageType::kMeta);
  p.set_page_lsn(123456789ull);
  p.set_slot_count(99);
  p.set_free_offset(512);
  p.set_aux(0xCAFE);
  EXPECT_EQ(p.page_lsn(), 123456789ull);
  EXPECT_EQ(p.slot_count(), 99);
  EXPECT_EQ(p.free_offset(), 512);
  EXPECT_EQ(p.aux(), 0xCAFEu);
}

TEST(PageTest, ChecksumDetectsCorruption) {
  Page p;
  p.Format(1, PageType::kBTreeLeaf);
  memcpy(p.data() + 100, "hello", 5);
  p.UpdateChecksum();
  EXPECT_TRUE(p.VerifyChecksum().ok());
  p.data()[200] ^= 0x01;
  EXPECT_TRUE(p.VerifyChecksum().IsCorruption());
}

TEST(PageTest, CopyIsDeep) {
  Page a;
  a.Format(5, PageType::kBTreeLeaf);
  memcpy(a.data() + 64, "payload", 7);
  Page b = a;
  b.data()[64] = 'X';
  EXPECT_EQ(a.data()[64], 'p');
  EXPECT_EQ(b.page_id(), 5u);
}

TEST(PageTest, CopyIsZeroCopyUntilFirstWrite) {
  Page a;
  a.Format(5, PageType::kBTreeLeaf);
  memcpy(a.data() + 64, "payload", 7);
  Page b = a;
  // COW: the copy aliases the same frame until someone writes.
  EXPECT_EQ(a.cdata(), b.cdata());
  b.data()[64] = 'X';
  EXPECT_NE(a.cdata(), b.cdata());
  EXPECT_EQ(a.cdata()[64], 'p');
  EXPECT_EQ(b.cdata()[64], 'X');
}

TEST(PageTest, DefaultPagesShareTheZeroFrame) {
  Page a;
  Page b;
  EXPECT_EQ(a.cdata(), b.cdata());
  EXPECT_EQ(a.cdata()[0], '\0');
  EXPECT_EQ(a.cdata()[kPageSize - 1], '\0');
  // Writing one detaches it without disturbing the shared zero frame.
  a.data()[0] = 'x';
  EXPECT_NE(a.cdata(), b.cdata());
  EXPECT_EQ(b.cdata()[0], '\0');
}

TEST(PageTest, AliasReadsForeignBufferWithoutCopy) {
  Page src;
  src.Format(9, PageType::kBTreeLeaf);
  src.set_page_lsn(55);
  src.UpdateChecksum();
  // The idiom of the zero-copy RBIO decode path: alias a page image
  // inside a (shared) wire frame instead of memcpy'ing it out.
  auto frame = std::make_shared<std::string>(src.cdata(), kPageSize);
  Page aliased = Page::Alias(frame, frame->data());
  EXPECT_EQ(aliased.cdata(), frame->data());
  EXPECT_EQ(aliased.page_id(), 9u);
  EXPECT_EQ(aliased.page_lsn(), 55u);
  EXPECT_TRUE(aliased.VerifyChecksum().ok());
  // A write detaches the alias; the wire frame is never scribbled on.
  aliased.data()[100] = 'Z';
  EXPECT_NE(aliased.cdata(), frame->data());
  EXPECT_EQ((*frame)[100], src.cdata()[100]);
}

TEST(PageTest, SliceRoundTrip) {
  Page a;
  a.Format(9, PageType::kVersionStore);
  a.set_page_lsn(55);
  a.UpdateChecksum();
  Page b;
  ASSERT_TRUE(b.FromSlice(a.AsSlice()).ok());
  EXPECT_TRUE(b.VerifyChecksum().ok());
  EXPECT_EQ(b.page_id(), 9u);
  EXPECT_EQ(b.page_lsn(), 55u);
  EXPECT_TRUE(b.FromSlice(Slice("short")).IsInvalidArgument());
}

// ---------------------------------------------------------- SimBlockDevice

TEST(SimBlockDeviceTest, WriteReadRoundTrip) {
  Simulator s;
  SimBlockDevice dev(s, DeviceProfile::LocalSsd());
  std::string got;
  Status ws, rs;
  Spawn(s, [](SimBlockDevice& d, std::string* out, Status* w,
              Status* r) -> Task<> {
    *w = co_await d.Write(1000, Slice("hello device"));
    *r = co_await d.Read(1000, 12, out);
  }(dev, &got, &ws, &rs));
  s.Run();
  EXPECT_TRUE(ws.ok());
  EXPECT_TRUE(rs.ok());
  EXPECT_EQ(got, "hello device");
  EXPECT_GT(s.now(), 0);  // latency was modelled
}

TEST(SimBlockDeviceTest, UnwrittenReadsAsZero) {
  Simulator s;
  SimBlockDevice dev(s, DeviceProfile::LocalSsd());
  std::string got;
  Spawn(s, [](SimBlockDevice& d, std::string* out) -> Task<> {
    (void)co_await d.Read(5 * GiB, 16, out);
  }(dev, &got));
  s.Run();
  EXPECT_EQ(got, std::string(16, '\0'));
}

TEST(SimBlockDeviceTest, SparseAllocation) {
  Simulator s;
  SimBlockDevice dev(s, DeviceProfile::LocalSsd());
  Spawn(s, [](SimBlockDevice& d) -> Task<> {
    (void)co_await d.Write(10 * GiB, Slice("far away"));
  }(dev));
  s.Run();
  // Writing 8 bytes at 10 GiB must not allocate 10 GiB.
  EXPECT_LT(dev.allocated_bytes(), 1 * MiB);
}

TEST(SimBlockDeviceTest, CrossChunkWrite) {
  Simulator s;
  SimBlockDevice dev(s, DeviceProfile::LocalSsd());
  std::string big(200 * KiB, 'z');  // spans multiple 64 KiB chunks
  for (size_t i = 0; i < big.size(); i++) big[i] = static_cast<char>(i % 251);
  std::string got;
  Spawn(s, [](SimBlockDevice& d, const std::string& data,
              std::string* out) -> Task<> {
    (void)co_await d.Write(60 * KiB, Slice(data));
    (void)co_await d.Read(60 * KiB, data.size(), out);
  }(dev, big, &got));
  s.Run();
  EXPECT_EQ(got, big);
}

TEST(SimBlockDeviceTest, OutageFailsRequests) {
  Simulator s;
  SimBlockDevice dev(s, DeviceProfile::XStore());
  dev.SetAvailable(false);
  Status ws;
  Spawn(s, [](SimBlockDevice& d, Status* w) -> Task<> {
    *w = co_await d.Write(0, Slice("x"));
  }(dev, &ws));
  s.Run();
  EXPECT_TRUE(ws.IsUnavailable());
  dev.SetAvailable(true);
  Status ws2;
  Spawn(s, [](SimBlockDevice& d, Status* w) -> Task<> {
    *w = co_await d.Write(0, Slice("x"));
  }(dev, &ws2));
  s.Run();
  EXPECT_TRUE(ws2.ok());
}

TEST(SimBlockDeviceTest, StatsAccumulate) {
  Simulator s;
  SimBlockDevice dev(s, DeviceProfile::LocalSsd());
  Spawn(s, [](SimBlockDevice& d) -> Task<> {
    (void)co_await d.Write(0, Slice("abcd"));
    std::string out;
    (void)co_await d.Read(0, 4, &out);
    (void)co_await d.Read(0, 2, &out);
  }(dev));
  s.Run();
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_EQ(dev.stats().reads, 2u);
  EXPECT_EQ(dev.stats().bytes_written, 4u);
  EXPECT_EQ(dev.stats().bytes_read, 6u);
}

// --------------------------------------------------- ReplicatedBlockDevice

TEST(ReplicatedDeviceTest, WriteReachesAllReplicasEventually) {
  Simulator s;
  ReplicatedBlockDevice dev(s, DeviceProfile::Xio(), 3, 2);
  Status ws;
  Spawn(s, [](ReplicatedBlockDevice& d, Status* w) -> Task<> {
    *w = co_await d.Write(512, Slice("quorum payload"));
  }(dev, &ws));
  s.Run();  // run to completion: laggard replica writes finish too
  EXPECT_TRUE(ws.ok());
  for (int i = 0; i < 3; i++) {
    char buf[14];
    dev.replica(i)->ReadRaw(512, 14, buf);
    EXPECT_EQ(std::string(buf, 14), "quorum payload") << "replica " << i;
  }
}

TEST(ReplicatedDeviceTest, QuorumFasterThanAllReplicas) {
  // Commit completes at the 2nd-fastest replica, not the slowest. With a
  // wide uniform distribution, quorum-of-2 beats waiting for all 3.
  Simulator s;
  sim::DeviceProfile p;
  p.read = sim::LatencyModel::Fixed(100);
  p.write = sim::LatencyModel::Uniform(1000, 9000);
  ReplicatedBlockDevice quorum_dev(s, p, 3, 2, /*seed=*/99);
  ReplicatedBlockDevice all_dev(s, p, 3, 3, /*seed=*/99);

  SimTime t_quorum = 0, t_all = 0;
  Spawn(s, [](Simulator& sm, ReplicatedBlockDevice& d,
              SimTime* out) -> Task<> {
    SimTime begin = sm.now();
    for (int i = 0; i < 50; i++) {
      (void)co_await d.Write(i * 512, Slice("x"));
    }
    *out = sm.now() - begin;
  }(s, quorum_dev, &t_quorum));
  s.Run();
  Spawn(s, [](Simulator& sm, ReplicatedBlockDevice& d,
              SimTime* out) -> Task<> {
    SimTime begin = sm.now();
    for (int i = 0; i < 50; i++) {
      (void)co_await d.Write(i * 512, Slice("x"));
    }
    *out = sm.now() - begin;
  }(s, all_dev, &t_all));
  s.Run();
  EXPECT_LT(t_quorum, t_all);
}

TEST(ReplicatedDeviceTest, SurvivesMinorityOutage) {
  Simulator s;
  ReplicatedBlockDevice dev(s, DeviceProfile::Xio(), 3, 2);
  dev.replica(0)->SetAvailable(false);
  Status ws;
  std::string got;
  Spawn(s, [](ReplicatedBlockDevice& d, Status* w, std::string* out)
            -> Task<> {
    *w = co_await d.Write(0, Slice("still durable"));
    (void)co_await d.Read(0, 13, out);
  }(dev, &ws, &got));
  s.Run();
  EXPECT_TRUE(ws.ok());
  EXPECT_EQ(got, "still durable");  // read fails over past the dead replica
}

TEST(ReplicatedDeviceTest, FailsWithoutQuorum) {
  Simulator s;
  ReplicatedBlockDevice dev(s, DeviceProfile::Xio(), 3, 2);
  dev.replica(0)->SetAvailable(false);
  dev.replica(1)->SetAvailable(false);
  Status ws;
  Spawn(s, [](ReplicatedBlockDevice& d, Status* w) -> Task<> {
    *w = co_await d.Write(0, Slice("lost"));
  }(dev, &ws));
  s.Run();
  EXPECT_TRUE(ws.IsUnavailable());
}

TEST(ReplicatedDeviceTest, AllReplicasDownReadFails) {
  Simulator s;
  ReplicatedBlockDevice dev(s, DeviceProfile::Xio(), 3, 2);
  for (int i = 0; i < 3; i++) dev.replica(i)->SetAvailable(false);
  Status rs;
  std::string out;
  Spawn(s, [](ReplicatedBlockDevice& d, Status* r, std::string* o)
            -> Task<> {
    *r = co_await d.Read(0, 8, o);
  }(dev, &rs, &out));
  s.Run();
  EXPECT_TRUE(rs.IsUnavailable());
}

}  // namespace
}  // namespace storage
}  // namespace socrates
