// Tests for the discrete-event simulator and coroutine primitives: ordering,
// Task composition, Event/Mutex/Semaphore/WaitGroup semantics, Channel
// message passing, CPU accounting, latency model statistics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/histogram.h"
#include "sim/channel.h"
#include "sim/cpu.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace socrates {
namespace sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(30, [&] { order.push_back(3); });
  s.ScheduleAt(10, [&] { order.push_back(1); });
  s.ScheduleAt(20, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    s.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; i++) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator s;
  SimTime fired_at = -1;
  s.ScheduleAt(10, [&] {
    s.ScheduleAfter(15, [&] { fired_at = s.now(); });
  });
  s.Run();
  EXPECT_EQ(fired_at, 25);
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator s;
  int count = 0;
  s.ScheduleAt(10, [&] { count++; });
  s.ScheduleAt(100, [&] { count++; });
  s.RunUntil(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 50);
  EXPECT_EQ(s.pending_events(), 1u);
  s.Run();
  EXPECT_EQ(count, 2);
}

// ------------------------------------------------------------------ Task

Task<int> ReturnAfter(Simulator& s, SimTime d, int v) {
  co_await Delay(s, d);
  co_return v;
}

Task<int> SumOfTwo(Simulator& s) {
  int a = co_await ReturnAfter(s, 10, 1);
  int b = co_await ReturnAfter(s, 20, 2);
  co_return a + b;
}

TEST(TaskTest, NestedTasksComposeAndTimeAccumulates) {
  Simulator s;
  int result = 0;
  SimTime done_at = -1;
  Spawn(s, [](Simulator& sim, int* out, SimTime* when) -> Task<> {
    *out = co_await SumOfTwo(sim);
    *when = sim.now();
  }(s, &result, &done_at));
  s.Run();
  EXPECT_EQ(result, 3);
  EXPECT_EQ(done_at, 30);
}

TEST(TaskTest, SpawnRunsSynchronouslyUntilFirstSuspend) {
  Simulator s;
  int stage = 0;
  Spawn(s, [](Simulator& sim, int* st) -> Task<> {
    *st = 1;
    co_await Delay(sim, 5);
    *st = 2;
  }(s, &stage));
  EXPECT_EQ(stage, 1);  // ran to the first co_await synchronously
  s.Run();
  EXPECT_EQ(stage, 2);
}

TEST(TaskTest, ManySpawnedTasksInterleaveDeterministically) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; i++) {
    Spawn(s, [](Simulator& sim, std::vector<int>* ord, int id) -> Task<> {
      co_await Delay(sim, 10 * (5 - id));
      ord->push_back(id);
    }(s, &order, i));
  }
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(TaskTest, YieldReschedulesAtSameTime) {
  Simulator s;
  std::vector<std::string> order;
  Spawn(s, [](Simulator& sim, std::vector<std::string>* ord) -> Task<> {
    ord->push_back("a1");
    co_await Yield(sim);
    ord->push_back("a2");
  }(s, &order));
  Spawn(s, [](Simulator& sim, std::vector<std::string>* ord) -> Task<> {
    ord->push_back("b1");
    co_await Yield(sim);
    ord->push_back("b2");
  }(s, &order));
  s.Run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"a1", "b1", "a2", "b2"}));
  EXPECT_EQ(s.now(), 0);
}

// ----------------------------------------------------------------- Event

TEST(EventTest, WaitersWakeOnSet) {
  Simulator s;
  Event e(s);
  int woken = 0;
  for (int i = 0; i < 3; i++) {
    Spawn(s, [](Event& ev, int* w) -> Task<> {
      co_await ev.Wait();
      (*w)++;
    }(e, &woken));
  }
  s.Run();
  EXPECT_EQ(woken, 0);  // nothing set yet, queue drained
  e.Set();
  s.Run();
  EXPECT_EQ(woken, 3);
}

TEST(EventTest, AlreadySetIsImmediate) {
  Simulator s;
  Event e(s);
  e.Set();
  bool done = false;
  Spawn(s, [](Event& ev, bool* d) -> Task<> {
    co_await ev.Wait();
    *d = true;
  }(e, &done));
  EXPECT_TRUE(done);  // no suspension needed
}

TEST(EventTest, WaitForTimesOut) {
  Simulator s;
  Event e(s);
  bool fired = true;
  Spawn(s, [](Event& ev, bool* f) -> Task<> {
    *f = co_await ev.WaitFor(100);
  }(e, &fired));
  s.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.now(), 100);
}

TEST(EventTest, WaitForSucceedsBeforeTimeout) {
  Simulator s;
  Event e(s);
  bool fired = false;
  SimTime when = -1;
  Spawn(s, [](Simulator& sim, Event& ev, bool* f, SimTime* w) -> Task<> {
    *f = co_await ev.WaitFor(1000);
    *w = sim.now();
  }(s, e, &fired, &when));
  s.ScheduleAt(50, [&] { e.Set(); });
  s.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(when, 50);
}

TEST(EventTest, ResetAllowsReuse) {
  Simulator s;
  Event e(s);
  e.Set();
  e.Reset();
  EXPECT_FALSE(e.is_set());
  bool done = false;
  Spawn(s, [](Event& ev, bool* d) -> Task<> {
    co_await ev.Wait();
    *d = true;
  }(e, &done));
  s.Run();
  EXPECT_FALSE(done);
  e.Set();
  s.Run();
  EXPECT_TRUE(done);
}

// ----------------------------------------------------------------- Mutex

TEST(MutexTest, MutualExclusionAndFifo) {
  Simulator s;
  Mutex mu(s);
  std::vector<int> order;
  int inside = 0;
  int max_inside = 0;
  for (int i = 0; i < 4; i++) {
    Spawn(s, [](Simulator& sim, Mutex& m, std::vector<int>* ord, int id,
                int* in, int* maxin) -> Task<> {
      auto g = co_await m.Acquire();
      (*in)++;
      *maxin = std::max(*maxin, *in);
      co_await Delay(sim, 10);
      ord->push_back(id);
      (*in)--;
    }(s, mu, &order, i, &inside, &max_inside));
  }
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(max_inside, 1);
  EXPECT_FALSE(mu.locked());
  EXPECT_EQ(s.now(), 40);
}

TEST(MutexTest, GuardReleaseEarly) {
  Simulator s;
  Mutex mu(s);
  bool second_ran = false;
  Spawn(s, [](Simulator& sim, Mutex& m) -> Task<> {
    auto g = co_await m.Acquire();
    g.Release();
    co_await Delay(sim, 100);  // holds nothing now
  }(s, mu));
  Spawn(s, [](Mutex& m, bool* ran) -> Task<> {
    auto g = co_await m.Acquire();
    *ran = true;
  }(mu, &second_ran));
  s.RunUntil(1);
  EXPECT_TRUE(second_ran);
}

// -------------------------------------------------------------- Semaphore

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulator s;
  Semaphore sem(s, 2);
  int inside = 0, max_inside = 0, completed = 0;
  for (int i = 0; i < 6; i++) {
    Spawn(s, [](Simulator& sim, Semaphore& sm, int* in, int* maxin,
                int* comp) -> Task<> {
      co_await sm.Acquire();
      (*in)++;
      *maxin = std::max(*maxin, *in);
      co_await Delay(sim, 10);
      (*in)--;
      (*comp)++;
      sm.Release();
    }(s, sem, &inside, &max_inside, &completed));
  }
  s.Run();
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(max_inside, 2);
  EXPECT_EQ(s.now(), 30);  // 6 jobs, 2 wide, 10us each
  EXPECT_EQ(sem.permits(), 2);
}

TEST(SemaphoreTest, ReleaseManyWakesMany) {
  Simulator s;
  Semaphore sem(s, 0);
  int woken = 0;
  for (int i = 0; i < 3; i++) {
    Spawn(s, [](Semaphore& sm, int* w) -> Task<> {
      co_await sm.Acquire();
      (*w)++;
    }(sem, &woken));
  }
  s.Run();
  EXPECT_EQ(woken, 0);
  sem.Release(3);
  s.Run();
  EXPECT_EQ(woken, 3);
  EXPECT_EQ(sem.permits(), 0);
}

// -------------------------------------------------------------- WaitGroup

TEST(WaitGroupTest, QuorumStylePattern) {
  Simulator s;
  WaitGroup wg(s);
  wg.Add(2);  // wait for 2 of 3 replica writes (quorum)
  int acked = 0;
  SimTime quorum_at = -1;
  for (SimTime lat : {30, 10, 50}) {
    Spawn(s, [](Simulator& sim, WaitGroup& w, SimTime l, int* a) -> Task<> {
      co_await Delay(sim, l);
      (*a)++;
      if (w.count() > 0) w.Done();
    }(s, wg, lat, &acked));
  }
  Spawn(s, [](Simulator& sim, WaitGroup& w, SimTime* at) -> Task<> {
    co_await w.Wait();
    *at = sim.now();
  }(s, wg, &quorum_at));
  s.Run();
  EXPECT_EQ(acked, 3);
  EXPECT_EQ(quorum_at, 30);  // second-fastest replica defines quorum
}

namespace gather_detail {
Task<> Tick(Simulator& sim, SimTime delay, int* done) {
  co_await Delay(sim, delay);
  (*done)++;
}
Task<> JoinThree(Simulator& sim, int* done, SimTime* joined_at) {
  std::vector<Task<>> tasks;
  tasks.push_back(Tick(sim, 40, done));
  tasks.push_back(Tick(sim, 10, done));
  tasks.push_back(Tick(sim, 25, done));
  co_await Gather(sim, std::move(tasks));
  *joined_at = sim.now();
}
}  // namespace gather_detail

TEST(GatherTest, JoinsAllTasksAtSlowestFinish) {
  Simulator s;
  int done = 0;
  SimTime joined_at = -1;
  Spawn(s, gather_detail::JoinThree(s, &done, &joined_at));
  s.Run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(joined_at, 40);  // the join resumes with the slowest task
}

namespace gather_detail {
Task<> JoinEmpty(Simulator& sim, bool* resumed) {
  co_await Gather(sim, {});
  *resumed = true;
}
}  // namespace gather_detail

TEST(GatherTest, EmptyTaskListResumesImmediately) {
  Simulator s;
  bool resumed = false;
  Spawn(s, gather_detail::JoinEmpty(s, &resumed));
  s.Run();
  EXPECT_TRUE(resumed);
}

// ---------------------------------------------------------------- Channel

TEST(ChannelTest, PushThenPop) {
  Simulator s;
  Channel<int> ch(s);
  ch.Push(1);
  ch.Push(2);
  std::vector<int> got;
  Spawn(s, [](Channel<int>& c, std::vector<int>* g) -> Task<> {
    for (int i = 0; i < 2; i++) {
      auto v = co_await c.Pop();
      g->push_back(*v);
    }
  }(ch, &got));
  s.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(ChannelTest, PopBlocksUntilPush) {
  Simulator s;
  Channel<std::string> ch(s);
  std::string got;
  SimTime when = -1;
  Spawn(s, [](Simulator& sim, Channel<std::string>& c, std::string* g,
              SimTime* w) -> Task<> {
    auto v = co_await c.Pop();
    *g = *v;
    *w = sim.now();
  }(s, ch, &got, &when));
  s.ScheduleAt(42, [&] { ch.Push("hello"); });
  s.Run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(when, 42);
}

TEST(ChannelTest, CloseWakesWaitersWithNullopt) {
  Simulator s;
  Channel<int> ch(s);
  bool got_nullopt = false;
  Spawn(s, [](Channel<int>& c, bool* n) -> Task<> {
    auto v = co_await c.Pop();
    *n = !v.has_value();
  }(ch, &got_nullopt));
  s.ScheduleAt(10, [&] { ch.Close(); });
  s.Run();
  EXPECT_TRUE(got_nullopt);
}

TEST(ChannelTest, DrainAfterClose) {
  Simulator s;
  Channel<int> ch(s);
  ch.Push(7);
  ch.Close();
  ch.Push(8);  // dropped
  std::vector<int> got;
  bool closed_seen = false;
  Spawn(s, [](Channel<int>& c, std::vector<int>* g, bool* cl) -> Task<> {
    while (true) {
      auto v = co_await c.Pop();
      if (!v) {
        *cl = true;
        break;
      }
      g->push_back(*v);
    }
  }(ch, &got, &closed_seen));
  s.Run();
  EXPECT_EQ(got, (std::vector<int>{7}));
  EXPECT_TRUE(closed_seen);
}

TEST(ChannelTest, FifoAcrossManyProducersConsumers) {
  Simulator s;
  Channel<int> ch(s);
  std::vector<int> got;
  for (int c = 0; c < 3; c++) {
    Spawn(s, [](Channel<int>& chan, std::vector<int>* g) -> Task<> {
      while (true) {
        auto v = co_await chan.Pop();
        if (!v) break;
        g->push_back(*v);
      }
    }(ch, &got));
  }
  for (int i = 0; i < 9; i++) ch.Push(i);
  s.Run();
  ch.Close();
  s.Run();
  ASSERT_EQ(got.size(), 9u);
  // Order across consumers is not globally sorted, but every item is
  // delivered exactly once.
  std::vector<int> sorted = got;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
}

// ------------------------------------------------------------ CpuResource

TEST(CpuTest, SerializesBeyondCoreCount) {
  Simulator s;
  CpuResource cpu(s, 2);
  int done = 0;
  for (int i = 0; i < 4; i++) {
    Spawn(s, [](CpuResource& c, int* d) -> Task<> {
      co_await c.Consume(100);
      (*d)++;
    }(cpu, &done));
  }
  s.Run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(s.now(), 200);  // 4 x 100us on 2 cores
  EXPECT_EQ(cpu.busy_micros(), 400);
}

TEST(CpuTest, UtilizationAccounting) {
  Simulator s;
  CpuResource cpu(s, 4);
  cpu.ResetAccounting();
  Spawn(s, [](CpuResource& c) -> Task<> {
    co_await c.Consume(100);
  }(cpu));
  s.Run();
  s.RunUntil(1000);
  // 100 busy core-us over 4 cores * 1000us = 2.5%.
  EXPECT_NEAR(cpu.Utilization(), 0.025, 1e-9);
}

TEST(CpuTest, FullSaturationReads100Pct) {
  Simulator s;
  CpuResource cpu(s, 1);
  cpu.ResetAccounting();
  Spawn(s, [](Simulator& sim, CpuResource& c) -> Task<> {
    (void)sim;
    for (int i = 0; i < 10; i++) co_await c.Consume(50);
  }(s, cpu));
  s.Run();
  EXPECT_NEAR(cpu.Utilization(), 1.0, 1e-9);
}

// ---------------------------------------------------------- LatencyModel

TEST(LatencyModelTest, FixedAndZero) {
  Random rng(1);
  EXPECT_EQ(LatencyModel::Zero().Sample(rng), 0);
  EXPECT_EQ(LatencyModel::Fixed(123).Sample(rng), 123);
}

TEST(LatencyModelTest, UniformWithinBounds) {
  Random rng(2);
  auto m = LatencyModel::Uniform(100, 200);
  for (int i = 0; i < 1000; i++) {
    SimTime t = m.Sample(rng);
    EXPECT_GE(t, 100);
    EXPECT_LE(t, 200);
  }
}

TEST(LatencyModelTest, LogNormalMedianAndClamp) {
  Random rng(3);
  auto m = LatencyModel::LogNormal(1000, 0.2, 800, 5000);
  Histogram h;
  for (int i = 0; i < 20000; i++) {
    SimTime t = m.Sample(rng);
    EXPECT_GE(t, 800);
    EXPECT_LE(t, 5000);
    h.Add(static_cast<double>(t));
  }
  EXPECT_NEAR(h.Median(), 1000, 100);
}

TEST(DeviceProfileTest, HierarchyOrdering) {
  // Medians must respect the storage hierarchy the paper relies on:
  // local SSD << DirectDrive << XIO << XStore.
  Random rng(4);
  auto median = [&rng](const LatencyModel& m) {
    Histogram h;
    for (int i = 0; i < 5000; i++) {
      h.Add(static_cast<double>(m.Sample(rng)));
    }
    return h.Median();
  };
  double ssd = median(DeviceProfile::LocalSsd().write);
  double dd = median(DeviceProfile::DirectDrive().write);
  double xio = median(DeviceProfile::Xio().write);
  double xstore = median(DeviceProfile::XStore().write);
  EXPECT_LT(ssd, dd);
  EXPECT_LT(dd, xio);
  EXPECT_LT(xio, xstore);
  // And CPU-per-IO: XIO's REST path is much more expensive than DD's.
  EXPECT_GT(DeviceProfile::Xio().cpu_per_io_us,
            5 * DeviceProfile::DirectDrive().cpu_per_io_us);
}

// -------------------------------------------------- Event core substrate

TEST(TimerTest, CancelPreventsFire) {
  Simulator s;
  int fired = 0;
  auto id = s.ScheduleTimer(10, [&] { fired++; });
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.Cancel(id));  // double cancel reports already-dead
  s.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(TimerTest, CancelAfterFireReturnsFalse) {
  Simulator s;
  int fired = 0;
  auto id = s.ScheduleTimer(10, [&] { fired++; });
  s.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.Cancel(id));
}

TEST(TimerTest, CancelBeyondWheelHorizon) {
  // Timers past the wheel's span land in the overflow heap; Cancel must
  // find and kill them there too.
  Simulator s;
  int fired = 0;
  auto far = s.ScheduleTimer(20000, [&] { fired++; });  // > wheel span
  (void)s.ScheduleTimer(5, [&] { fired += 10; });
  EXPECT_TRUE(s.Cancel(far));
  s.Run();
  EXPECT_EQ(fired, 10);  // near timer unaffected by the far cancel
}

TEST(TimerTest, CancelledTimerDoesNotBlockSlotNeighbors) {
  Simulator s;
  std::vector<int> order;
  auto a = s.ScheduleTimer(20, [&] { order.push_back(1); });
  s.ScheduleTimer(20, [&] { order.push_back(2); });
  s.ScheduleTimer(20, [&] { order.push_back(3); });
  EXPECT_TRUE(s.Cancel(a));
  s.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // survivors keep their FIFO order
  EXPECT_EQ(order[1], 3);
}

TEST(WatermarkTest, BatchResumeWakesEligibleWaitersInFifoOrder) {
  // Watermark::Advance wakes all satisfied waiters through one
  // ScheduleResumeBatch call; wake order must stay FIFO per threshold.
  Simulator s;
  Watermark w(s);
  std::vector<int> order;
  auto waiter = [](Watermark* w, uint64_t lsn, int tag,
                   std::vector<int>* order) -> Task<> {
    co_await w->WaitFor(lsn);
    order->push_back(tag);
  };
  Spawn(s, waiter(&w, 100, 1, &order));
  Spawn(s, waiter(&w, 50, 2, &order));
  Spawn(s, waiter(&w, 100, 3, &order));
  Spawn(s, waiter(&w, 200, 4, &order));
  s.Run();
  EXPECT_TRUE(order.empty());
  w.Advance(100);  // wakes 2, then 1 and 3 (registration order within 100)
  s.Run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 3);
  w.Advance(500);
  s.Run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[3], 4);
}

TEST(TraceHashTest, SameScheduleSameHash) {
  auto run = [] {
    Simulator s;
    s.EnableTraceHash();
    int n = 0;
    for (int i = 0; i < 50; i++) {
      s.ScheduleAt(10 * (i % 7), [&n] { n++; });
    }
    s.Run();
    return s.trace_hash();
  };
  const uint64_t h1 = run();
  const uint64_t h2 = run();
  EXPECT_EQ(h1, h2);
}

}  // namespace
}  // namespace sim
}  // namespace socrates
