// End-to-end cluster tests: the full Socrates deployment (Primary +
// Secondaries + XLOG + Page Servers + XStore), the distributed workflows
// (failover, warm restart, add-secondary, backup, PITR), the durability
// and freshness invariants, and the HADR baseline.

#include <gtest/gtest.h>

#include <map>

#include "hadr/hadr.h"
#include "service/deployment.h"

namespace socrates {
namespace service {
namespace {

using engine::Engine;
using engine::MakeKey;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

// Run events until the driver coroutine finishes. Unlike Simulator::Run,
// this terminates even though background service loops (periodic
// checkpoints, destaging) keep scheduling timers forever.
template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  int guard = 0;
  while (!done && s.Step()) {
    if (++guard > 200000000) break;
  }
  ASSERT_TRUE(done) << "driver task did not finish";
}

DeploymentOptions SmallDeployment(int page_servers = 2,
                                  int secondaries = 1) {
  DeploymentOptions o;
  o.partition_map.pages_per_partition = 256;
  o.num_page_servers = page_servers;
  o.num_secondaries = secondaries;
  o.compute.mem_pages = 64;
  o.compute.ssd_pages = 256;
  o.page_server.mem_pages = 64;
  o.page_server.checkpoint_interval_us = 200 * 1000;
  return o;
}

// Commit `n` rows through the primary: key i -> value prefix+i.
Task<> LoadRows(Engine* e, uint64_t start, uint64_t n,
                const std::string& prefix) {
  for (uint64_t i = start; i < start + n; i += 8) {
    auto txn = e->Begin();
    for (uint64_t k = i; k < std::min(start + n, i + 8); k++) {
      (void)e->Put(txn.get(), MakeKey(1, k),
                   prefix + std::to_string(k));
    }
    Status s = co_await e->Commit(txn.get());
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

Task<> VerifyRows(Engine* e, uint64_t start, uint64_t n,
                  const std::string& prefix) {
  auto txn = e->Begin(true);
  for (uint64_t k = start; k < start + n; k++) {
    auto v = co_await e->Get(txn.get(), MakeKey(1, k));
    EXPECT_TRUE(v.ok()) << "key " << k << ": " << v.status().ToString();
    if (v.ok()) {
      EXPECT_EQ(*v, prefix + std::to_string(k));
    }
  }
  (void)co_await e->Commit(txn.get());
}

TEST(ClusterTest, BootAndCommitThroughAllTiers) {
  Simulator s;
  Deployment d(s, SmallDeployment());
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 100, "v");
    co_await VerifyRows(d.primary_engine(), 0, 100, "v");
    // Let dissemination settle before asserting on XLOG state.
    co_await d.xlog().available().WaitFor(d.log_client().end_lsn());
  });
  // The log flowed: LZ hardened it, XLOG disseminated it, Page Servers
  // applied it.
  EXPECT_GT(d.durable_end(), engine::kLogStreamStart);
  EXPECT_EQ(d.xlog().available().value(), d.log_client().end_lsn());
  d.Stop();
}

TEST(ClusterTest, SecondaryServesSnapshotReads) {
  Simulator s;
  Deployment d(s, SmallDeployment(2, 2));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 120, "x");
    // Wait for the secondaries to catch up.
    co_await d.secondary(0)->applier()->applied_lsn().WaitFor(
        d.log_client().end_lsn());
    co_await VerifyRows(d.secondary(0)->engine(), 0, 120, "x");
    co_await d.secondary(1)->applier()->applied_lsn().WaitFor(
        d.log_client().end_lsn());
    co_await VerifyRows(d.secondary(1)->engine(), 0, 120, "x");
  });
  // Secondaries fetched pages from Page Servers (sparse caches).
  EXPECT_GT(d.secondary(0)->remote_fetches(), 0u);
  d.Stop();
}

TEST(ClusterTest, EvictionAndGetPageAtLsnFreshness) {
  // Tiny compute cache forces constant eviction + refetch through
  // GetPage@LSN; values must always be the latest committed ones.
  Simulator s;
  DeploymentOptions o = SmallDeployment(2, 0);
  o.compute.mem_pages = 8;
  o.compute.ssd_pages = 16;  // tiny RBPEX: pages leave the node
  o.compute.readahead_pages = 8;  // regression: range freshness per page
  Deployment d(s, o);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    // Several rounds of updates over enough keys to overflow the tiny
    // compute cache many times over.
    for (int round = 0; round < 3; round++) {
      co_await LoadRows(d.primary_engine(), 0, 5000,
                        "r" + std::to_string(round) + "-");
    }
    co_await VerifyRows(d.primary_engine(), 0, 5000, "r2-");
  });
  EXPECT_GT(d.primary()->remote_fetches(), 0u);  // evictions happened
  d.Stop();
}

TEST(ClusterTest, FailoverPromotesSecondaryWithoutDataLoss) {
  Simulator s;
  Deployment d(s, SmallDeployment(2, 1));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 150, "pre-");
    EXPECT_TRUE((co_await d.Failover()).ok());
    EXPECT_EQ(d.num_secondaries(), 0);
    // All pre-failover commits visible on the new primary.
    co_await VerifyRows(d.primary_engine(), 0, 150, "pre-");
    // And it accepts new writes.
    co_await LoadRows(d.primary_engine(), 150, 50, "post-");
    co_await VerifyRows(d.primary_engine(), 150, 50, "post-");
  });
  d.Stop();
}

TEST(ClusterTest, PrimaryWarmRestartViaRbpex) {
  Simulator s;
  Deployment d(s, SmallDeployment(2, 0));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 150, "a");
    EXPECT_TRUE((co_await d.Checkpoint()).ok());
    co_await LoadRows(d.primary_engine(), 150, 50, "a");  // after ckpt
    uint64_t fetches_before = d.primary()->remote_fetches();
    EXPECT_TRUE((co_await d.RestartPrimary()).ok());
    co_await VerifyRows(d.primary_engine(), 0, 200, "a");
    // The warm RBPEX kept most pages local: far fewer refetches than
    // pages in the database.
    EXPECT_LT(d.primary()->remote_fetches() - fetches_before, 100u);
  });
  d.Stop();
}

TEST(ClusterTest, WarmupAfterRestartRestoresHitRateSooner) {
  // Warm-cache promotion after recovery: with warmup_after_recovery the
  // RBPEX MRU prefix is promoted to memory in the background, so at a
  // fixed instant after restart a probe of the hot working set runs at
  // (>=90% of) the steady-state memory hit rate, while a cold restart
  // still pays an SSD promotion per hot leaf.
  //
  // The probe touches one key per distinct leaf region so each access
  // reflects residency of a different page (a dense pass would hide the
  // per-leaf promotion cost behind ~hundreds of same-leaf mem hits).
  constexpr uint64_t kDbRows = 8000;   // whole DB overflows memory
  constexpr uint64_t kHotRows = 3200;  // hot set fits in memory
  constexpr uint64_t kStride = 100;    // ~2 probes per leaf
  struct Outcome {
    double steady_rate = 0;   // probe mem hit rate before the restart
    double post_rate = 0;     // probe mem hit rate after restart+settle
    uint64_t post_us = 0;     // sim time the post-restart probe took
    uint64_t promoted = 0;
  };
  auto probe = [](Simulator& s, Deployment& d, double* rate,
                  uint64_t* us) -> Task<> {
    engine::BufferPoolStats b0 = d.primary()->pool()->stats();
    uint64_t t0 = s.now();
    auto txn = d.primary_engine()->Begin(true);
    for (uint64_t k = 0; k < kHotRows; k += kStride) {
      auto v = co_await d.primary_engine()->Get(txn.get(), MakeKey(1, k));
      EXPECT_TRUE(v.ok());
    }
    (void)co_await d.primary_engine()->Commit(txn.get());
    if (us != nullptr) *us = s.now() - t0;
    engine::BufferPoolStats b1 = d.primary()->pool()->stats();
    uint64_t acc = b1.accesses() - b0.accesses();
    *rate = acc == 0
                ? 0.0
                : static_cast<double>(b1.mem_hits - b0.mem_hits) / acc;
  };
  auto run = [&probe](bool warmup, Outcome* out) {
    Simulator s;
    DeploymentOptions o = SmallDeployment(2, 0);
    o.compute.mem_pages = 48;
    o.compute.ssd_pages = 512;
    o.compute.warmup_after_recovery = warmup;
    Deployment d(s, o);
    RunSim(s, [&]() -> Task<> {
      EXPECT_TRUE((co_await d.Start()).ok());
      // The load overflows the 24-frame memory tier many times over, so
      // every page also has an RBPEX copy.
      co_await LoadRows(d.primary_engine(), 0, kDbRows, "w");
      EXPECT_TRUE((co_await d.Checkpoint()).ok());
      // Reach steady state on the hot range: the first pass promotes hot
      // leaves from SSD (stamping the SSD MRU order), the second runs
      // from memory.
      co_await VerifyRows(d.primary_engine(), 0, kHotRows, "w");
      co_await VerifyRows(d.primary_engine(), 0, kHotRows, "w");
      co_await probe(s, d, &out->steady_rate, nullptr);

      EXPECT_TRUE((co_await d.RestartPrimary()).ok());
      // Identical settle budget for both configs: warmup spends it
      // promoting the RBPEX MRU prefix, the control spends it idle.
      co_await sim::Delay(s, 200 * 1000);
      out->promoted = d.primary()->pool()->warmup_promoted();
      co_await probe(s, d, &out->post_rate, &out->post_us);
    });
    d.Stop();
  };
  Outcome with, without;
  run(true, &with);
  run(false, &without);
  EXPECT_GT(with.promoted, 0u);
  EXPECT_EQ(without.promoted, 0u);
  // Warmup is back to >=90% of the steady-state hit rate at the fixed
  // settle point; the cold restart is still measurably behind.
  EXPECT_GE(with.post_rate, 0.9 * with.steady_rate)
      << "warmup did not restore the working set";
  EXPECT_LT(without.post_rate, 0.9 * with.steady_rate)
      << "control was already warm; the workload is not discriminating";
  EXPECT_LT(with.post_us, without.post_us)
      << "post-restart probe not faster with a warmed cache";
}

TEST(ClusterTest, CommitsDurableAcrossFullComputeLoss) {
  // Stateless compute invariant: kill the Primary (no failover target),
  // bring up a brand-new one, and every acked commit must be there —
  // reconstructed from XLOG + Page Servers alone.
  Simulator s;
  Deployment d(s, SmallDeployment(2, 1));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 100, "durable-");
    EXPECT_TRUE((co_await d.Failover()).ok());  // new compute, old dies
    co_await VerifyRows(d.primary_engine(), 0, 100, "durable-");
  });
  d.Stop();
}

TEST(ClusterTest, AddSecondaryIsConstantTime) {
  Simulator s;
  Deployment d(s, SmallDeployment(2, 0));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 300, "s");
    SimTime t0 = s.now();
    auto sec = co_await d.AddSecondary();
    EXPECT_TRUE(sec.ok());
    SimTime spinup = s.now() - t0;
    // O(1): no data copy at creation (well under a millisecond of
    // simulated time).
    EXPECT_LT(spinup, 1000);
    // It can serve reads (fetching pages on demand).
    co_await (*sec)->applier()->applied_lsn().WaitFor(
        d.log_client().end_lsn());
    co_await VerifyRows((*sec)->engine(), 0, 300, "s");
  });
  d.Stop();
}

TEST(ClusterTest, PageServerCrashRecoversFromRbpexAndLog) {
  Simulator s;
  Deployment d(s, SmallDeployment(2, 0));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 200, "p");
    auto* ps = d.page_server(0);
    ps->Crash();
    EXPECT_TRUE((co_await ps->Start()).ok());
    co_await ps->applied_lsn().WaitFor(d.log_client().end_lsn());
    co_await VerifyRows(d.primary_engine(), 0, 200, "p");
  });
  d.Stop();
}

TEST(ClusterTest, BackupIsConstantTimeAndPitrRestoresExactState) {
  Simulator s;
  Deployment d(s, SmallDeployment(2, 0));
  std::unique_ptr<Deployment> restored;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 120, "epoch1-");

    auto backup = co_await d.Backup();
    EXPECT_TRUE(backup.ok());

    // More writes after the backup...
    co_await LoadRows(d.primary_engine(), 0, 120, "epoch2-");
    Lsn target = d.durable_end();
    co_await LoadRows(d.primary_engine(), 0, 120, "epoch3-");

    // ...and restore to the point between epoch2 and epoch3.
    auto r = co_await d.PointInTimeRestore(*backup, target);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) {
      restored = std::move(r).value();
      co_await VerifyRows(restored->primary_engine(), 0, 120, "epoch2-");
    }
    // The live database still has epoch3.
    co_await VerifyRows(d.primary_engine(), 0, 120, "epoch3-");
  });
  d.Stop();
}

TEST(ClusterTest, BackupLatencyIndependentOfDataSize) {
  Simulator s;
  Deployment d(s, SmallDeployment(2, 0));
  SimTime small_backup = 0, big_backup = 0;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 20, "b");
    SimTime t0 = s.now();
    auto b1 = co_await d.Backup();
    EXPECT_TRUE(b1.ok());
    small_backup = s.now() - t0;

    co_await LoadRows(d.primary_engine(), 20, 600, "b");
    t0 = s.now();
    auto b2 = co_await d.Backup();
    EXPECT_TRUE(b2.ok());
    big_backup = s.now() - t0;
  });
  // 30x the data, backup time within small constant factors (checkpoint
  // of the dirty tail dominates; the snapshot itself is O(1)).
  EXPECT_LT(big_backup, small_backup * 20);
  d.Stop();
}

TEST(ClusterTest, SecondaryTraversalRaceDetected) {
  // Aggressive updates while a secondary with a tiny cache reads: the
  // secondary must never return wrong data, and the fence-key retry
  // machinery should engage at least occasionally.
  Simulator s;
  DeploymentOptions o = SmallDeployment(2, 1);
  o.compute.mem_pages = 16;
  o.compute.ssd_pages = 32;
  Deployment d(s, o);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 50, "w0-");
  });
  bool writer_done = false;
  Spawn(s, Wrap([](Deployment* dp) -> Task<> {
          // One transaction per round: snapshot reads must then see a
          // single round atomically.
          for (int round = 1; round <= 6; round++) {
            Engine* e = dp->primary_engine();
            auto txn = e->Begin();
            for (uint64_t k = 0; k < 300; k++) {
              (void)e->Put(txn.get(), MakeKey(1, k),
                           "w" + std::to_string(round) + "-" +
                               std::to_string(k));
            }
            Status st = co_await e->Commit(txn.get());
            EXPECT_TRUE(st.ok());
          }
        }(&d),
        &writer_done));
  bool reader_done = false;
  Spawn(s, Wrap([](Simulator* sm, Deployment* dp) -> Task<> {
    Engine* e = dp->secondary(0)->engine();
    for (int i = 0; i < 40; i++) {
      auto txn = e->Begin(true);
      auto rows = co_await e->Scan(txn.get(), MakeKey(1, 0), 40);
      EXPECT_TRUE(rows.ok());
      if (rows.ok()) {
        // Snapshot consistency: all values from the same write round.
        std::string round;
        for (auto& [k, v] : *rows) {
          std::string r = v.substr(0, v.find('-') + 1);
          if (round.empty()) round = r;
          EXPECT_EQ(r, round) << "torn snapshot read";
        }
      }
      (void)co_await e->Commit(txn.get());
      co_await sim::Delay(*sm, 1500);
    }
  }(&s, &d),
        &reader_done));
  while (!(writer_done && reader_done) && s.Step()) {
  }
  EXPECT_TRUE(writer_done);
  EXPECT_TRUE(reader_done);
  d.Stop();
}


TEST(ClusterTest, GeoSecondaryLagsButStaysConsistent) {
  Simulator s;
  Deployment d(s, SmallDeployment(2, 0));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 80, "geo-");
    // A replica across the planet: ~60 ms RTT (§6 geo-replication).
    auto geo = co_await d.AddGeoSecondary(60000);
    EXPECT_TRUE(geo.ok());
    co_await LoadRows(d.primary_engine(), 80, 40, "geo-");
    // It takes noticeably longer than intra-DC to catch up, but it does,
    // and serves the full consistent state.
    co_await (*geo)->applier()->applied_lsn().WaitFor(
        d.log_client().end_lsn());
    co_await VerifyRows((*geo)->engine(), 0, 120, "geo-");
    EXPECT_GT((*geo)->remote_fetches(), 0u);
  });
  d.Stop();
}

TEST(ClusterTest, PageServerReplicaFailoverIsInstant) {
  Simulator s;
  Deployment d(s, SmallDeployment(2, 0));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 150, "ps-");
    // Hot standby for partition 0 (§6 "second way to add a Page Server").
    EXPECT_TRUE((co_await d.AddPageServerReplica(0)).ok());
    co_await LoadRows(d.primary_engine(), 150, 50, "ps-");
    // Let the replica catch up, then kill the main server.
    co_await d.page_server_replica(0)->applied_lsn().WaitFor(
        d.log_client().end_lsn());
    SimTime t0 = s.now();
    EXPECT_TRUE((co_await d.FailoverPageServer(0)).ok());
    SimTime failover_us = s.now() - t0;
    EXPECT_LT(failover_us, 1000);  // metadata-only rerouting
    // All reads still work — including pages in partition 0 that the
    // primary must refetch through the replica.
    d.primary()->pool()->Crash();
    (void)co_await d.primary()->pool()->Recover(d.durable_end());
    co_await VerifyRows(d.primary_engine(), 0, 200, "ps-");
  });
  d.Stop();
}

TEST(ClusterTest, ResizeComputeKeepsServingAndChangesCores) {
  Simulator s;
  Deployment d(s, SmallDeployment(2, 0));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 100, "sz-");
    EXPECT_EQ(d.primary()->cpu().cores(), 8);
    SimTime t0 = s.now();
    EXPECT_TRUE((co_await d.ResizeCompute(32)).ok());
    SimTime resize_us = s.now() - t0;
    EXPECT_EQ(d.primary()->cpu().cores(), 32);
    co_await VerifyRows(d.primary_engine(), 0, 100, "sz-");
    co_await LoadRows(d.primary_engine(), 100, 20, "sz-");
    // O(1): no size-of-data step in the serverless resize (§5).
    EXPECT_LT(resize_us, 200000);
  });
  d.Stop();
}

TEST(ClusterTest, RecoveryBoundedDespiteLongRunningTransaction) {
  // The ADR property (§3.2): a long-running open transaction does NOT
  // lengthen recovery, because pages never contain uncommitted data and
  // recovery is pure redo from the last checkpoint.
  Simulator s;
  Deployment d(s, SmallDeployment(2, 0));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 100, "adr-");
    EXPECT_TRUE((co_await d.Checkpoint()).ok());

    // Baseline: crash+restart right after a checkpoint.
    SimTime t0 = s.now();
    EXPECT_TRUE((co_await d.RestartPrimary()).ok());
    SimTime base_recovery = s.now() - t0;

    // Now with a long-running transaction that has been open across many
    // other commits (the classic unbounded-undo nightmare for ARIES).
    EXPECT_TRUE((co_await d.Checkpoint()).ok());
    auto long_txn = d.primary_engine()->Begin();
    (void)d.primary_engine()->Put(long_txn.get(),
                                  engine::MakeKey(3, 999), "uncommitted");
    co_await LoadRows(d.primary_engine(), 100, 60, "adr-");
    EXPECT_TRUE((co_await d.Checkpoint()).ok());

    t0 = s.now();
    EXPECT_TRUE((co_await d.RestartPrimary()).ok());
    SimTime long_txn_recovery = s.now() - t0;

    // Recovery with the long transaction open is within a small factor
    // of the baseline (both bounded by the checkpoint interval), and the
    // uncommitted write is simply gone.
    EXPECT_LT(long_txn_recovery, base_recovery * 5 + 50000);
    auto check = d.primary_engine()->Begin(true);
    auto gone = co_await d.primary_engine()->Get(
        check.get(), engine::MakeKey(3, 999));
    EXPECT_TRUE(gone.status().IsNotFound());
    (void)co_await d.primary_engine()->Commit(check.get());
    co_await VerifyRows(d.primary_engine(), 0, 160, "adr-");
  });
  d.Stop();
}


TEST(ClusterTest, DistributedCheckpointPersistsControlState) {
  Simulator s;
  Deployment d(s, SmallDeployment(3, 0));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 120, "dc-");
    // All partitions checkpoint in parallel, then the control record.
    SimTime t0 = s.now();
    EXPECT_TRUE((co_await d.CheckpointAll()).ok());
    SimTime all_us = s.now() - t0;
    for (int p = 0; p < d.num_page_servers(); p++) {
      EXPECT_GT(d.page_server(p)->checkpoints_completed(), 0u);
    }
    // The replay point survives outside any compute node's memory.
    auto persisted = co_await d.LoadControlCheckpointLsn();
    EXPECT_TRUE(persisted.ok());
    if (persisted.ok()) {
      EXPECT_EQ(*persisted, d.last_checkpoint_lsn());
    }
    // Parallelism sanity: three partitions in parallel should not take
    // three times one partition's checkpoint (XStore round trips
    // overlap). Measure one serial round for comparison.
    co_await LoadRows(d.primary_engine(), 120, 60, "dc-");
    t0 = s.now();
    EXPECT_TRUE((co_await d.page_server(0)->Checkpoint()).ok());
    EXPECT_TRUE((co_await d.page_server(1)->Checkpoint()).ok());
    EXPECT_TRUE((co_await d.page_server(2)->Checkpoint()).ok());
    SimTime serial_us = s.now() - t0;
    EXPECT_LT(all_us, serial_us * 2);  // loose: parallel ≲ serial
    // Recovery through the persisted control point still works.
    EXPECT_TRUE((co_await d.RestartPrimary()).ok());
    co_await VerifyRows(d.primary_engine(), 0, 180, "dc-");
  });
  d.Stop();
}

// ------------------------------------------------------------------ HADR

// One snapshot-read transaction over a strided key slice; concurrent
// instances produce overlapping page misses for the RBIO batcher.
Task<> ReadSlice(Engine* e, uint64_t start, uint64_t n,
                 sim::WaitGroup* wg) {
  auto txn = e->Begin(true);
  for (uint64_t k = start; k < start + n; k++) {
    auto v = co_await e->Get(txn.get(), MakeKey(1, k));
    EXPECT_TRUE(v.ok()) << "key " << k << ": " << v.status().ToString();
  }
  (void)co_await e->Commit(txn.get());
  wg->Done();
}

TEST(ClusterTest, BatchAndWaiterCountersConsistent) {
  Simulator s;
  DeploymentOptions o = SmallDeployment(/*page_servers=*/1,
                                        /*secondaries=*/0);
  o.compute.mem_pages = 8;
  o.compute.ssd_pages = 0;  // no RBPEX: every capacity miss goes remote
  Deployment d(s, o);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 1200, "v");
    // Eight concurrent readers over disjoint slices: their misses
    // overlap in time and get multiplexed into batch frames.
    sim::WaitGroup wg(s);
    for (uint64_t r = 0; r < 8; r++) {
      wg.Add();
      Spawn(s, ReadSlice(d.primary_engine(), r * 150, 150, &wg));
    }
    co_await wg.Wait();
  });
  rbio::RbioClient& client = d.primary()->rbio_client();
  pageserver::PageServer* ps = d.page_server(0);
  // The concurrent miss streams actually multiplexed.
  EXPECT_GT(client.batches_sent(), 0u);
  EXPECT_GT(client.round_trips_saved(), 0u);
  EXPECT_EQ(client.batch_fallbacks(), 0u);
  // Counter consistency, client side: every wire request is either a
  // batch frame or a per-page single (no retries in this run).
  EXPECT_EQ(client.retries(), 0u);
  EXPECT_EQ(client.requests_sent(),
            client.batches_sent() + client.singles_sent());
  EXPECT_EQ(client.round_trips_saved(),
            client.batched_pages() - client.batches_sent());
  // Server side: GetPage@LSN requests == batch sub-requests + singles,
  // and the two tiers agree about what crossed the wire.
  EXPECT_EQ(ps->batch_requests(), client.batches_sent());
  EXPECT_EQ(ps->batch_subrequests(), client.batched_pages());
  EXPECT_EQ(ps->getpage_requests(),
            client.batched_pages() + client.singles_sent());
  // Freshness waits were recorded (one per single + one per batch LSN
  // group), and event-driven wakes carry no poll-quantization lag.
  EXPECT_GT(ps->freshness_wait_us().count(), 0u);
  EXPECT_LE(ps->freshness_wait_us().count(), ps->getpage_requests());
  EXPECT_EQ(ps->waiter_wake_lag_us().max(), 0.0);
  d.Stop();
}

TEST(ClusterTest, FreshnessWaitWakesExactlyOnApply) {
  Simulator s;
  Deployment d(s, SmallDeployment(/*page_servers=*/1, /*secondaries=*/0));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 100, "v");
    pageserver::PageServer* ps = d.page_server(0);
    co_await ps->applied_lsn().WaitFor(d.log_client().end_lsn());
    // Park a GetPage@LSN probe beyond the applied watermark, then
    // advance the watermark at an instant that is NOT a multiple of the
    // old 300 µs poll quantum. The probe must complete at that instant.
    Lsn target = ps->applied_lsn().value() + 64;
    SimTime probe_done_at = 0;
    Status probe_status;
    Spawn(s, [](pageserver::PageServer* p, Simulator* sm, Lsn t,
                SimTime* at, Status* st) -> Task<> {
      auto r = co_await p->GetPageAtLsn(engine::kRootPageId, t);
      *at = sm->now();
      *st = r.status();
    }(ps, &s, target, &probe_done_at, &probe_status));
    co_await sim::Delay(s, 137);
    SimTime advanced_at = s.now();
    ps->applied_lsn().Advance(target);
    co_await sim::Delay(s, 1000);
    EXPECT_TRUE(probe_status.ok()) << probe_status.ToString();
    // Event-driven wake: the probe finished within CPU-cost distance of
    // the advance — far inside the old 300 µs poll floor.
    EXPECT_GE(probe_done_at, advanced_at);
    EXPECT_LT(probe_done_at - advanced_at, 50);
    EXPECT_GE(ps->waiter_wakes(), 1u);
    EXPECT_EQ(ps->waiter_wake_lag_us().max(), 0.0);
  });
  d.Stop();
}

TEST(ClusterTest, CrashDuringFreshnessWaitReturnsUnavailable) {
  Simulator s;
  Deployment d(s, SmallDeployment(/*page_servers=*/1, /*secondaries=*/0));
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 100, "v");
    pageserver::PageServer* ps = d.page_server(0);
    co_await ps->applied_lsn().WaitFor(d.log_client().end_lsn());
    // A probe waiting for log that will never arrive in this
    // incarnation...
    Lsn target = ps->applied_lsn().value() + 1000000;
    bool done = false;
    Status probe_status;
    Spawn(s, [](pageserver::PageServer* p, Lsn t, Status* st,
                bool* dn) -> Task<> {
      auto r = co_await p->GetPageAtLsn(engine::kRootPageId, t);
      *st = r.status();
      *dn = true;
    }(ps, target, &probe_status, &done));
    co_await sim::Delay(s, 500);
    EXPECT_FALSE(done);  // parked on the waiter heap
    // ...fails Unavailable the moment the server dies, instead of
    // leaking a suspended coroutine.
    ps->Crash();
    co_await sim::Delay(s, 10);
    EXPECT_TRUE(done);
    EXPECT_TRUE(probe_status.IsUnavailable())
        << probe_status.ToString();
    EXPECT_TRUE((co_await ps->Start()).ok());  // server restarts cleanly
  });
  d.Stop();
}

TEST(HadrTest, CommitAndReadBack) {
  Simulator s;
  xstore::XStore xs(s);
  hadr::HadrCluster cluster(s, &xs);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await cluster.Start()).ok());
    co_await LoadRows(cluster.primary_engine(), 0, 100, "h");
    co_await VerifyRows(cluster.primary_engine(), 0, 100, "h");
  });
  cluster.Stop();
  s.Run();
}

TEST(HadrTest, SecondariesReplicateEverything) {
  Simulator s;
  xstore::XStore xs(s);
  hadr::HadrCluster cluster(s, &xs);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await cluster.Start()).ok());
    co_await LoadRows(cluster.primary_engine(), 0, 80, "r");
    for (int i = 0; i < cluster.num_secondaries(); i++) {
      co_await cluster.secondary(i)->applier()->applied_lsn().WaitFor(
          cluster.sink()->hardened_lsn());
      co_await VerifyRows(cluster.secondary(i)->engine(), 0, 80, "r");
    }
  });
  cluster.Stop();
  s.Run();
}

TEST(HadrTest, FailoverKeepsData) {
  Simulator s;
  xstore::XStore xs(s);
  hadr::HadrCluster cluster(s, &xs);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await cluster.Start()).ok());
    co_await LoadRows(cluster.primary_engine(), 0, 60, "f");
    EXPECT_TRUE((co_await cluster.Failover()).ok());
    co_await VerifyRows(cluster.primary_engine(), 0, 60, "f");
    co_await LoadRows(cluster.primary_engine(), 60, 30, "g");
    co_await VerifyRows(cluster.primary_engine(), 60, 30, "g");
  });
  cluster.Stop();
  s.Run();
}

TEST(HadrTest, SeedingIsSizeOfData) {
  Simulator s;
  xstore::XStore xs(s);
  hadr::HadrCluster cluster(s, &xs);
  SimTime small_seed = 0, big_seed = 0;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await cluster.Start()).ok());
    co_await LoadRows(cluster.primary_engine(), 0, 50, "s");
    auto r1 = co_await cluster.SeedNewSecondary();
    EXPECT_TRUE(r1.ok());
    small_seed = *r1;
    co_await LoadRows(cluster.primary_engine(), 50, 1500, "s");
    auto r2 = co_await cluster.SeedNewSecondary();
    EXPECT_TRUE(r2.ok());
    big_seed = *r2;
  });
  // O(size-of-data): 30x the data means much longer seeding (vs the
  // Socrates AddSecondary test above, which is O(1)).
  EXPECT_GT(big_seed, small_seed * 5);
  cluster.Stop();
  s.Run();
}

TEST(HadrTest, LogThroughputThrottledByBackup) {
  // With a tiny backup-lag allowance and slow XStore, log production
  // stalls; Socrates (snapshot backups) has no such coupling.
  Simulator s;
  xstore::XStore xs(s, sim::DeviceProfile::XStore(),
                    /*bandwidth_mb_s=*/2.0);
  hadr::HadrOptions opts;
  opts.max_backup_lag_bytes = 64 * KiB;
  hadr::HadrCluster cluster(s, &xs, opts);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await cluster.Start()).ok());
    // Write enough log to exceed the backup lag window.
    for (int i = 0; i < 80; i++) {
      auto txn = cluster.primary_engine()->Begin();
      (void)cluster.primary_engine()->Put(
          txn.get(), MakeKey(1, i), std::string(2048, 'x'));
      EXPECT_TRUE((co_await cluster.primary_engine()->Commit(txn.get()))
                      .ok());
    }
  });
  EXPECT_GT(cluster.sink()->backup_stalls(), 0u);
  cluster.Stop();
  s.Run();
}

}  // namespace
}  // namespace service
}  // namespace socrates
