// XLOG service tests: landing-zone circular buffer semantics, quorum
// durability, pending-area hardening rules (speculative logging safety),
// lossy-channel gap repair, destaging to SSD cache + LT, tiered serving,
// partition filtering, and commit latency shape (XIO vs DirectDrive).

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "engine/log_record.h"
#include "xlog/landing_zone.h"
#include "xlog/log_block.h"
#include "xlog/xlog_client.h"
#include "xlog/xlog_process.h"
#include "xstore/xstore.h"

namespace socrates {
namespace xlog {
namespace {

using engine::kLogStreamStart;
using engine::LogRecord;
using engine::LogRecordType;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  Spawn(s, fn());
  s.Run();
}

LogRecord CommitRecord(Timestamp ts) {
  LogRecord r;
  r.type = LogRecordType::kTxnCommit;
  r.commit_ts = ts;
  return r;
}

LogRecord InsertRecord(PageId page, uint64_t key, size_t value_bytes) {
  LogRecord r;
  r.type = LogRecordType::kLeafInsert;
  r.page_id = page;
  r.key = key;
  r.value = std::string(value_bytes, 'v');
  return r;
}

// ------------------------------------------------------------ LandingZone

TEST(LandingZoneTest, WriteReadRoundTrip) {
  Simulator s;
  LandingZone lz(s, sim::DeviceProfile::Xio(), 1 * MiB);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await lz.Write(kLogStreamStart, Slice("hello"))).ok());
    EXPECT_TRUE(
        (co_await lz.Write(kLogStreamStart + 5, Slice(" world"))).ok());
    auto r = co_await lz.Read(kLogStreamStart, kLogStreamStart + 11);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(*r, "hello world");
  });
  EXPECT_EQ(lz.durable_end(), kLogStreamStart + 11);
}

TEST(LandingZoneTest, RejectsNonContiguousWrite) {
  Simulator s;
  LandingZone lz(s, sim::DeviceProfile::Xio(), 1 * MiB);
  RunSim(s, [&]() -> Task<> {
    Status st = co_await lz.Write(kLogStreamStart + 100, Slice("gap"));
    EXPECT_TRUE(st.IsInvalidArgument());
  });
}

TEST(LandingZoneTest, FillsUpWithoutTruncation) {
  Simulator s;
  LandingZone lz(s, sim::DeviceProfile::DirectDrive(), 4096);
  RunSim(s, [&]() -> Task<> {
    std::string chunk(1024, 'x');
    Lsn pos = kLogStreamStart;
    for (int i = 0; i < 4; i++) {
      EXPECT_TRUE((co_await lz.Write(pos, Slice(chunk))).ok());
      pos += chunk.size();
    }
    // Buffer is full: the next write must be rejected...
    Status full = co_await lz.Write(pos, Slice(chunk));
    EXPECT_TRUE(full.IsOutOfSpace());
    // ...until destaging truncates.
    lz.Truncate(kLogStreamStart + 2048);
    EXPECT_TRUE((co_await lz.Write(pos, Slice(chunk))).ok());
  });
}

TEST(LandingZoneTest, WrapAroundPreservesData) {
  Simulator s;
  LandingZone lz(s, sim::DeviceProfile::DirectDrive(), 1000);
  RunSim(s, [&]() -> Task<> {
    Lsn pos = kLogStreamStart;
    for (int round = 0; round < 7; round++) {
      std::string chunk(300, static_cast<char>('a' + round));
      EXPECT_TRUE((co_await lz.Write(pos, Slice(chunk))).ok());
      pos += 300;
      lz.Truncate(pos - 300);  // keep only the last chunk
    }
    auto r = co_await lz.Read(pos - 300, pos);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(*r, std::string(300, 'g'));
  });
}

TEST(LandingZoneTest, ReadOutsideWindowFails) {
  Simulator s;
  LandingZone lz(s, sim::DeviceProfile::Xio(), 1 * MiB);
  RunSim(s, [&]() -> Task<> {
    (void)co_await lz.Write(kLogStreamStart, Slice("abcdef"));
    lz.Truncate(kLogStreamStart + 3);
    auto r = co_await lz.Read(kLogStreamStart, kLogStreamStart + 6);
    EXPECT_TRUE(r.status().IsInvalidArgument());
    auto r2 = co_await lz.Read(kLogStreamStart + 3, kLogStreamStart + 6);
    EXPECT_TRUE(r2.ok());
    EXPECT_EQ(*r2, "def");
  });
}

TEST(LandingZoneTest, SurvivesSingleReplicaOutage) {
  Simulator s;
  LandingZone lz(s, sim::DeviceProfile::Xio(), 1 * MiB);
  lz.device()->replica(1)->SetAvailable(false);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await lz.Write(kLogStreamStart, Slice("durable"))).ok());
    auto r = co_await lz.Read(kLogStreamStart, kLogStreamStart + 7);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(*r, "durable");
  });
}

// -------------------------------------------------- XLogProcess + client

struct XLogFixture {
  Simulator sim;
  xstore::XStore lt{sim};
  LandingZone lz;
  XLogProcess xlog;
  XLogClient client;

  explicit XLogFixture(sim::DeviceProfile lz_profile =
                           sim::DeviceProfile::DirectDrive(),
                       XLogClientOptions copts = {},
                       XLogOptions xopts = {})
      : lz(sim, lz_profile, 64 * MiB),
        xlog(sim, &lz, &lt, xopts),
        client(sim, &lz, &xlog, nullptr, copts) {
    xlog.Start();
    client.Start();
  }
};

TEST(XLogTest, AppendHardensAndDisseminates) {
  XLogFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    for (int i = 0; i < 10; i++) {
      f.client.Append(CommitRecord(i + 1));
    }
    EXPECT_TRUE((co_await f.client.Flush()).ok());
  });
  EXPECT_EQ(f.client.hardened_lsn(), f.client.end_lsn());
  // XLOG admitted everything (deliveries + notifications arrived).
  EXPECT_EQ(f.xlog.available().value(), f.client.end_lsn());
  EXPECT_EQ(f.xlog.pending_blocks(), 0u);
}

TEST(XLogTest, SpeculativeBlocksNotDisseminatedUntilHardened) {
  Simulator s;
  xstore::XStore lt(s);
  LandingZone lz(s, sim::DeviceProfile::Xio(), 64 * MiB);
  XLogOptions xopts;
  XLogProcess xlog(s, &lz, &lt, xopts);
  xlog.Start();
  // Deliver a block directly (as if from the lossy channel) WITHOUT any
  // hardening notification: it must stay in the pending area.
  std::string payload;
  engine::FrameRecord(&payload, Slice(CommitRecord(1).Encode()));
  xlog.DeliverBlock(LogBlock::Make(kLogStreamStart, payload, {}));
  s.RunFor(100000);
  EXPECT_EQ(xlog.available().value(), kLogStreamStart);
  EXPECT_EQ(xlog.pending_blocks(), 1u);
  // Harden it (and the LZ really has the bytes): now it disseminates.
  RunSim(s, [&]() -> Task<> {
    (void)co_await lz.Write(kLogStreamStart, Slice(payload));
  });
  xlog.NotifyHardened(kLogStreamStart + payload.size());
  s.Run();
  EXPECT_EQ(xlog.available().value(), kLogStreamStart + payload.size());
  EXPECT_EQ(xlog.pending_blocks(), 0u);
}

TEST(XLogTest, LostDeliveriesRepairedFromLandingZone) {
  XLogClientOptions copts;
  copts.delivery_loss_prob = 0.5;  // half the blocks vanish
  XLogFixture f(sim::DeviceProfile::DirectDrive(), copts);
  RunSim(f.sim, [&]() -> Task<> {
    for (int i = 0; i < 200; i++) {
      f.client.Append(CommitRecord(i + 1));
      if (i % 10 == 9) {
        EXPECT_TRUE((co_await f.client.Flush()).ok());
      }
    }
    (void)co_await f.client.Flush();
  });
  f.sim.RunFor(5LL * 1000 * 1000);  // let repairs settle
  EXPECT_GT(f.client.deliveries_lost(), 0u);
  EXPECT_GT(f.xlog.repairs(), 0u);
  // Despite the losses, the broker has the complete hardened stream.
  EXPECT_EQ(f.xlog.available().value(), f.client.end_lsn());
}

TEST(XLogTest, ConsumerPullsCompleteStream) {
  XLogFixture f;
  const int kRecords = 500;
  RunSim(f.sim, [&]() -> Task<> {
    for (int i = 0; i < kRecords; i++) {
      f.client.Append(InsertRecord(5, i, 100));
      f.client.Append(CommitRecord(i + 1));
      if (i % 50 == 0) (void)co_await f.client.Flush();
    }
    (void)co_await f.client.Flush();
  });
  // Pull everything and count records.
  int commits = 0;
  RunSim(f.sim, [&]() -> Task<> {
    Lsn pos = kLogStreamStart;
    while (pos < f.xlog.available().value()) {
      auto blocks = co_await f.xlog.Pull(pos, std::nullopt, 1 * MiB);
      EXPECT_TRUE(blocks.ok());
      if (blocks->empty()) break;
      for (auto& b : *blocks) {
        EXPECT_EQ(b.start_lsn, pos);
        EXPECT_FALSE(b.filtered);
        (void)engine::ForEachRecord(
            Slice(b.payload()), b.start_lsn, [&](Lsn, Slice p) {
              engine::LogRecord rec;
              EXPECT_TRUE(engine::LogRecord::Decode(p, &rec).ok());
              if (rec.type == LogRecordType::kTxnCommit) commits++;
              return true;
            });
        pos = b.end_lsn();
      }
    }
    EXPECT_EQ(pos, f.client.end_lsn());
  });
  EXPECT_EQ(commits, kRecords);
}

TEST(XLogTest, PartitionFilteringDropsIrrelevantPayload) {
  XLogOptions xopts;
  xopts.partition_map.pages_per_partition = 100;
  XLogClientOptions copts;
  copts.partition_map = xopts.partition_map;
  XLogFixture f(sim::DeviceProfile::DirectDrive(), copts, xopts);
  RunSim(f.sim, [&]() -> Task<> {
    // Partition 0 = pages [0,100); partition 1 = [100,200).
    f.client.Append(InsertRecord(5, 1, 50));
    (void)co_await f.client.Flush();  // block 1: partition 0 only
    f.client.Append(InsertRecord(150, 2, 50));
    (void)co_await f.client.Flush();  // block 2: partition 1 only
  });
  RunSim(f.sim, [&]() -> Task<> {
    // A partition-1 consumer: first block filtered, second delivered.
    auto blocks = co_await f.xlog.Pull(kLogStreamStart, PartitionId{1},
                                       1 * MiB);
    EXPECT_TRUE(blocks.ok());
    EXPECT_EQ(blocks->size(), 2u);
    if (blocks->size() == 2) {
      EXPECT_TRUE((*blocks)[0].filtered);
      EXPECT_TRUE((*blocks)[0].payload().empty());
      EXPECT_GT((*blocks)[0].payload_size, 0u);  // LSN still advances
      EXPECT_FALSE((*blocks)[1].filtered);
    }
  });
}

TEST(XLogTest, DestagingArchivesToLtAndTruncatesLz) {
  XLogFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    for (int i = 0; i < 100; i++) {
      f.client.Append(InsertRecord(1, i, 200));
    }
    (void)co_await f.client.Flush();
  });
  f.sim.RunFor(10LL * 1000 * 1000);  // destage + LT writes complete
  EXPECT_EQ(f.xlog.destaged_lsn(), f.client.end_lsn());
  EXPECT_EQ(f.lz.start_lsn(), f.xlog.destaged_lsn());  // truncated
  EXPECT_GT(f.lt.BlobSize("log/lt"), 0u);
  // LT holds the full stream byte-for-byte.
  std::string lt_bytes = f.lt.ReadRaw(
      "log/lt", 0, f.client.end_lsn() - kLogStreamStart);
  int records = 0;
  ASSERT_TRUE(engine::ForEachRecord(Slice(lt_bytes), kLogStreamStart,
                                    [&](Lsn, Slice) {
                                      records++;
                                      return true;
                                    })
                  .ok());
  EXPECT_EQ(records, 100);
}

TEST(XLogTest, OldLogServedFromLowerTiersAfterSeqMapEviction) {
  XLogOptions xopts;
  xopts.sequence_map_bytes = 4 * KiB;  // tiny: evicts quickly
  XLogFixture f(sim::DeviceProfile::DirectDrive(), {}, xopts);
  RunSim(f.sim, [&]() -> Task<> {
    for (int i = 0; i < 300; i++) {
      f.client.Append(InsertRecord(1, i, 300));
      if (i % 3 == 0) (void)co_await f.client.Flush();
    }
    (void)co_await f.client.Flush();
  });
  f.sim.RunFor(10LL * 1000 * 1000);
  // Pull from the very beginning: the head of the log left the sequence
  // map long ago and must come from SSD cache / LZ / LT.
  RunSim(f.sim, [&]() -> Task<> {
    Lsn pos = kLogStreamStart;
    while (pos < f.xlog.available().value()) {
      auto blocks = co_await f.xlog.Pull(pos, std::nullopt, 256 * KiB);
      EXPECT_TRUE(blocks.ok());
      if (!blocks.ok() || blocks->empty()) break;
      pos = blocks->back().end_lsn();
    }
    EXPECT_EQ(pos, f.client.end_lsn());
  });
  EXPECT_GT(f.xlog.pulls_from_ssd() + f.xlog.pulls_from_lz() +
                f.xlog.pulls_from_lt(),
            0u);
}

TEST(XLogTest, DestagingSurvivesXStoreOutage) {
  XLogFixture f;
  f.lt.SetAvailable(false);
  // Bounded runs throughout: while XStore is down the destage retry loop
  // keeps scheduling events, so Run() would never drain.
  Spawn(f.sim, [](XLogFixture* fx) -> Task<> {
    for (int i = 0; i < 50; i++) fx->client.Append(CommitRecord(i));
    EXPECT_TRUE((co_await fx->client.Flush()).ok());
  }(&f));
  f.sim.RunFor(500000);
  Lsn stuck = f.xlog.destaged_lsn();
  EXPECT_LT(stuck, f.client.end_lsn());  // destaging is blocked
  // Commits still work (durability = LZ, not XStore). Bounded run: the
  // destage retry loop keeps scheduling events while the outage lasts.
  bool committed = false;
  Spawn(f.sim, [](XLogFixture* fx, bool* done) -> Task<> {
    fx->client.Append(CommitRecord(999));
    EXPECT_TRUE((co_await fx->client.Flush()).ok());
    *done = true;
  }(&f, &committed));
  f.sim.RunFor(2LL * 1000 * 1000);
  EXPECT_TRUE(committed);
  f.lt.SetAvailable(true);
  f.sim.RunFor(10LL * 1000 * 1000);
  EXPECT_EQ(f.xlog.destaged_lsn(), f.client.end_lsn());  // caught up
}

TEST(XLogTest, ConsumerProgressTracking) {
  XLogFixture f;
  int a = f.xlog.RegisterConsumer("secondary-1");
  int b = f.xlog.RegisterConsumer("pageserver-0");
  f.xlog.ReportProgress(a, 1000);
  f.xlog.ReportProgress(b, 500);
  EXPECT_EQ(f.xlog.MinConsumerProgress(), 500u);
  f.xlog.ReportProgress(b, 2000);
  EXPECT_EQ(f.xlog.MinConsumerProgress(), 1000u);
}

// Commit latency shape, XIO vs DirectDrive (Appendix A / Table 6).
TEST(XLogLatencyTest, DirectDriveCommitsFasterThanXio) {
  auto measure = [](sim::DeviceProfile profile) {
    XLogFixture f(profile);
    Histogram h;
    RunSim(f.sim, [&]() -> Task<> {
      for (int i = 0; i < 300; i++) {
        SimTime begin = f.sim.now();
        f.client.Append(CommitRecord(i));
        (void)co_await f.client.Flush();
        h.Add(static_cast<double>(f.sim.now() - begin));
      }
    });
    return h;
  };
  Histogram xio = measure(sim::DeviceProfile::Xio());
  Histogram dd = measure(sim::DeviceProfile::DirectDrive());
  // Table 6 shape: DD median ~4x lower; DD min well under 1 ms while XIO
  // min is above 2 ms.
  EXPECT_GT(xio.Median() / dd.Median(), 2.5);
  EXPECT_GT(xio.min(), 2000);
  EXPECT_LT(dd.min(), 1000);
}

}  // namespace
}  // namespace xlog
}  // namespace socrates
