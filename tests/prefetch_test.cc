// Prefetch-pipeline correctness: dedup against in-flight demand fetches,
// the eviction in-flight barrier (a prefetch must never resurrect a stale
// RBPEX image while the fresh spill is still in the air), scan resistance
// of the cold LRU segment, wasted-prefetch accounting, and warm-cache
// promotion after Crash()+Recover().

#include <gtest/gtest.h>

#include "engine/btree_page.h"
#include "engine/buffer_pool.h"

namespace socrates {
namespace engine {
namespace {

using sim::Simulator;
using sim::Spawn;
using sim::Task;

// Fetcher serving freshly formatted pages stamped with their id; tracks
// how many times each page was fetched.
class FreshFetcher : public PageFetcher {
 public:
  explicit FreshFetcher(Simulator& sim) : sim_(sim) {}

  Task<Result<storage::Page>> FetchPage(PageId page_id) override {
    co_await sim::Delay(sim_, 250);
    fetches_++;
    storage::Page p;
    BTreePage::Format(&p, page_id, 0, kMinKey, kMaxKey, kInvalidPageId);
    p.set_page_lsn(1);
    p.UpdateChecksum();
    co_return p;
  }

  int fetches_ = 0;

 private:
  Simulator& sim_;
};

TEST(PrefetchTest, DedupsAgainstInflightDemandFetch) {
  Simulator sim;
  FreshFetcher fetcher(sim);
  BufferPoolOptions opts;
  opts.mem_pages = 16;
  BufferPool pool(sim, opts, &fetcher);

  bool done = false;
  Spawn(sim, [](Simulator& s, BufferPool& p, FreshFetcher& f,
                bool* done) -> Task<> {
    // Demand fetch in flight first, prefetch second: the prefetch must
    // fold into the existing in-flight entry (no second FetchPage).
    bool demand_done = false;
    Spawn(s, [](BufferPool& p, bool* dd) -> Task<> {
      Result<PageRef> ref = co_await p.GetPage(5);
      EXPECT_TRUE(ref.ok());
      *dd = true;
    }(p, &demand_done));
    co_await sim::Yield(s);  // let the demand fetch register in-flight
    p.Prefetch({5});
    EXPECT_EQ(p.stats().prefetch_issued, 0u);  // deduped, not issued
    co_await sim::Delay(s, 1000);
    EXPECT_TRUE(demand_done);
    EXPECT_EQ(f.fetches_, 1);

    // Prefetch in flight first, demand second: one fetch total, and the
    // demand access scores a prefetch hit.
    p.Prefetch({7});
    EXPECT_EQ(p.stats().prefetch_issued, 1u);
    Result<PageRef> ref = co_await p.GetPage(7);
    EXPECT_TRUE(ref.ok());
    EXPECT_EQ(ref->page()->page_id(), 7u);
    EXPECT_EQ(f.fetches_, 2);
    EXPECT_EQ(p.stats().prefetch_hits, 1u);
    // Same page again: still one fetch (now a plain mem hit).
    ref = co_await p.GetPage(7);
    EXPECT_TRUE(ref.ok());
    EXPECT_EQ(f.fetches_, 2);
    *done = true;
  }(sim, pool, fetcher, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(PrefetchTest, InstallsColdAndPromotesOnSecondTouch) {
  Simulator sim;
  FreshFetcher fetcher(sim);
  BufferPoolOptions opts;
  opts.mem_pages = 16;
  BufferPool pool(sim, opts, &fetcher);

  bool done = false;
  Spawn(sim, [](Simulator& s, BufferPool& p, bool* done) -> Task<> {
    p.Prefetch({1, 2, 3});
    EXPECT_EQ(p.stats().prefetch_issued, 3u);
    co_await sim::Delay(s, 1000);
    EXPECT_EQ(p.mem_resident(), 3u);
    EXPECT_EQ(p.mem_cold_resident(), 3u);  // all probationary
    // First demand touch: prefetch hit, but stays cold.
    (void)co_await p.GetPage(1);
    EXPECT_EQ(p.stats().prefetch_hits, 1u);
    EXPECT_EQ(p.mem_cold_resident(), 3u);
    // Second demand touch: genuine reuse, promoted to the hot segment.
    (void)co_await p.GetPage(1);
    EXPECT_EQ(p.mem_cold_resident(), 2u);
    EXPECT_EQ(p.mem_resident(), 3u);
    *done = true;
  }(sim, pool, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(PrefetchTest, NeverPromotesStaleImagePastInflightBarrier) {
  // Dirty page 0 is evicted; while its fresh image is still spilling to
  // SSD, a prefetch + demand read of page 0 must observe the fresh
  // image, not promote the stale SSD copy from the previous spill.
  Simulator sim;
  BufferPoolOptions opts;
  opts.mem_pages = 2;
  opts.ssd_pages = 64;
  BufferPool pool(sim, opts, nullptr);

  bool done = false;
  Spawn(sim, [](Simulator& s, BufferPool& p, bool* done) -> Task<> {
    // Materialize pages 0..3; page 0 counter = 1.
    for (PageId id = 0; id < 4; id++) {
      Result<PageRef> ref = p.NewPage(id);
      EXPECT_TRUE(ref.ok());
      ref->page()->Format(id, storage::PageType::kBTreeLeaf);
      EncodeFixed64(ref->page()->data() + 100, id == 0 ? 1 : 0);
      ref->page()->set_page_lsn(1);
      ref.value().MarkDirty();
    }
    co_await sim::Delay(s, 2000);  // page 0 spilled (stale-to-be image)

    // Rewrite page 0 (counter = 2) and push it out again.
    {
      Result<PageRef> ref = co_await p.GetPage(0);
      EXPECT_TRUE(ref.ok());
      EncodeFixed64(ref->page()->data() + 100, 2);
      ref->page()->set_page_lsn(2);
      ref.value().MarkDirty();
    }
    (void)co_await p.GetPage(1);
    (void)co_await p.GetPage(2);
    (void)co_await p.GetPage(3);
    // The eviction of page 0 (fresh image) is now either queued or in
    // flight. Prefetch + read it back immediately: the in-flight barrier
    // must serialize us behind the spill.
    p.Prefetch({0});
    Result<PageRef> ref = co_await p.GetPage(0);
    EXPECT_TRUE(ref.ok());
    EXPECT_EQ(DecodeFixed64(ref->page()->data() + 100), 2u)
        << "stale SSD image promoted past the in-flight spill barrier";
    *done = true;
  }(sim, pool, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(PrefetchTest, ScanResistanceHotSetSurvivesColdScan) {
  Simulator sim;
  FreshFetcher fetcher(sim);
  BufferPoolOptions opts;
  opts.mem_pages = 64;
  BufferPool pool(sim, opts, &fetcher);

  bool done = false;
  Spawn(sim, [](Simulator& s, BufferPool& p, bool* done) -> Task<> {
    // Establish a hot set: pages 0..15, touched twice (demand installs
    // are hot already; the second touch mirrors real reuse).
    for (int round = 0; round < 2; round++) {
      for (PageId id = 0; id < 16; id++) {
        Result<PageRef> ref = co_await p.GetPage(id);
        EXPECT_TRUE(ref.ok());
      }
    }
    // Cold full-table scan, prefetch-driven: 304 pages through a 64-page
    // pool. Each page is prefetched, then demand-read exactly once.
    for (PageId base = 100; base < 404; base += 8) {
      std::vector<PageId> window;
      for (PageId id = base; id < base + 8; id++) window.push_back(id);
      p.Prefetch(window);
      for (PageId id = base; id < base + 8; id++) {
        Result<PageRef> ref = co_await p.GetPage(id);
        EXPECT_TRUE(ref.ok());
        EXPECT_EQ(ref->page()->page_id(), id);
      }
    }
    co_await sim::Delay(s, 2000);  // drain background eviction
    // The scan displaced only itself: the hot set is fully resident.
    for (PageId id = 0; id < 16; id++) {
      EXPECT_TRUE(p.InMemory(id)) << "hot page " << id << " was flushed";
    }
    EXPECT_LE(p.mem_resident(), 64u);
    // Every scan page was prefetched and demand-read once.
    EXPECT_EQ(p.stats().prefetch_issued, 304u);
    EXPECT_EQ(p.stats().prefetch_hits, 304u);
    *done = true;
  }(sim, pool, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(PrefetchTest, WastedCountsPagesEvictedUnused) {
  Simulator sim;
  FreshFetcher fetcher(sim);
  BufferPoolOptions opts;
  opts.mem_pages = 8;
  BufferPool pool(sim, opts, &fetcher);

  bool done = false;
  Spawn(sim, [](Simulator& s, BufferPool& p, bool* done) -> Task<> {
    p.Prefetch({1, 2, 3, 4, 5, 6, 7, 8});
    co_await sim::Delay(s, 1000);
    EXPECT_EQ(p.mem_resident(), 8u);
    // Demand-load 8 distinct pages: the unused prefetched frames drain
    // off the cold tail, each counted as wasted speculation.
    for (PageId id = 100; id < 108; id++) {
      Result<PageRef> ref = co_await p.GetPage(id);
      EXPECT_TRUE(ref.ok());
    }
    co_await sim::Delay(s, 1000);
    EXPECT_EQ(p.stats().prefetch_wasted, 8u);
    EXPECT_EQ(p.stats().prefetch_hits, 0u);
    for (PageId id = 100; id < 108; id++) {
      EXPECT_TRUE(p.InMemory(id));
    }
    *done = true;
  }(sim, pool, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(PrefetchTest, WarmupPromotesMruPrefixAfterRecover) {
  Simulator sim;
  BufferPoolOptions opts;
  opts.mem_pages = 16;
  opts.ssd_pages = 128;
  BufferPool pool(sim, opts, nullptr);

  bool done = false;
  Spawn(sim, [](Simulator& s, BufferPool& p, bool* done) -> Task<> {
    // Materialize 48 pages; with 16 memory frames, at least 32 spill.
    for (PageId id = 0; id < 48; id++) {
      Result<PageRef> ref = p.NewPage(id);
      EXPECT_TRUE(ref.ok());
      ref->page()->Format(id, storage::PageType::kBTreeLeaf);
      ref->page()->set_page_lsn(1);
      ref.value().MarkDirty();
      co_await sim::Delay(s, 100);
    }
    co_await sim::Delay(s, 5000);
    // Touch an SSD-resident working set to stamp the SSD MRU order.
    size_t before = p.stats().ssd_hits;
    for (PageId id = 0; id < 8; id++) {
      Result<PageRef> ref = co_await p.GetPage(id);
      EXPECT_TRUE(ref.ok());
    }
    EXPECT_GT(p.stats().ssd_hits, before);  // they did come from SSD
    co_await sim::Delay(s, 5000);

    p.Crash();
    EXPECT_EQ(p.mem_resident(), 0u);
    Result<size_t> rec = co_await p.Recover(/*durable_end_lsn=*/100);
    EXPECT_TRUE(rec.ok());
    EXPECT_GT(*rec, 0u);

    p.StartWarmup();
    EXPECT_FALSE(p.warmup_done());
    while (!p.warmup_done()) co_await sim::Delay(s, 500);
    EXPECT_GT(p.warmup_promoted(), 0u);
    EXPECT_GT(p.mem_resident(), 0u);
    EXPECT_LE(p.mem_resident(), 16u);
    // The most recently used SSD pages were promoted first; with 16
    // frames the 8-page working set fits entirely.
    size_t mru_resident = 0;
    for (PageId id = 0; id < 8; id++) {
      if (p.InMemory(id)) mru_resident++;
    }
    EXPECT_EQ(mru_resident, 8u);
    *done = true;
  }(sim, pool, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace engine
}  // namespace socrates
