// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
//  * B-tree differential test across value-size / keyspace shapes
//  * buffer pool hit-rate & correctness across tier geometries
//  * snapshot-isolation visibility across version-chain depths
//  * log replay determinism across block sizes and loss rates
//  * Zipf skew across theta values

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "engine/btree.h"
#include "engine/buffer_pool.h"
#include "engine/log_sink.h"
#include "engine/redo.h"
#include "engine/txn_engine.h"
#include "xlog/landing_zone.h"
#include "xlog/xlog_client.h"
#include "xlog/xlog_process.h"
#include "xstore/xstore.h"

namespace socrates {
namespace {

using engine::BTree;
using engine::BufferPool;
using engine::BufferPoolOptions;
using engine::Engine;
using engine::MemLogSink;
using engine::VersionChain;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  while (!done && s.Step()) {
  }
  ASSERT_TRUE(done);
}

// ---------------------------------------------------- B-tree differential

// (value_size, keyspace, ops)
using BTreeParam = std::tuple<int, uint64_t, int>;

class BTreeSweep : public ::testing::TestWithParam<BTreeParam> {};

TEST_P(BTreeSweep, MatchesModel) {
  auto [value_size, keyspace, ops] = GetParam();
  Simulator sim;
  MemLogSink sink(sim);
  BufferPoolOptions po;
  po.mem_pages = 1 << 20;
  BufferPool pool(sim, po, nullptr);
  BTree tree(sim, &pool, &sink);
  std::map<uint64_t, std::string> model;
  RunSim(sim, [&]() -> Task<> {
    EXPECT_TRUE((co_await tree.Create()).ok());
    Random rng(keyspace * 31 + value_size);
    for (int i = 0; i < ops; i++) {
      uint64_t key = rng.Uniform(keyspace);
      if (rng.Bernoulli(0.8) || model.count(key) == 0) {
        std::string v(1 + rng.Uniform(value_size), 'a' + key % 26);
        VersionChain c;
        c.Push(1, false, Slice(v));
        EXPECT_TRUE((co_await tree.Write(1, key, c)).ok());
        model[key] = v;
      } else {
        EXPECT_TRUE((co_await tree.Erase(1, key)).ok());
        model.erase(key);
      }
    }
    // Full differential scan.
    auto mit = model.begin();
    size_t seen = 0;
    auto r = co_await tree.Scan(
        0, SIZE_MAX, [&](uint64_t k, const VersionChain& c) {
          if (mit == model.end()) return false;
          EXPECT_EQ(k, mit->first);
          EXPECT_EQ(c.Newest()->payload, mit->second);
          ++mit;
          seen++;
          return true;
        });
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(seen, model.size());
    EXPECT_TRUE(mit == model.end());
    // Point lookups for absent keys.
    for (int i = 0; i < 50; i++) {
      uint64_t key = keyspace + rng.Uniform(1000);
      auto miss = co_await tree.Find(key);
      EXPECT_TRUE(miss.status().IsNotFound());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BTreeSweep,
    ::testing::Values(
        BTreeParam{16, 200, 2000},     // tiny values, dense keys
        BTreeParam{300, 500, 2000},    // medium values
        BTreeParam{1500, 300, 1200},   // large values: few per page
        BTreeParam{64, 1u << 30, 2000},  // sparse keyspace
        BTreeParam{700, 64, 3000}));   // heavy churn on few keys

// ------------------------------------------------- BufferPool geometries

// (mem_pages, ssd_pages, pages, accesses)
using PoolParam = std::tuple<size_t, size_t, PageId, int>;

class PoolGeometry : public ::testing::TestWithParam<PoolParam> {};

class StampFetcher : public engine::PageFetcher {
 public:
  explicit StampFetcher(Simulator& sim) : sim_(sim) {}
  Task<Result<storage::Page>> FetchPage(PageId id) override {
    co_await sim::Delay(sim_, 200);
    storage::Page p;
    p.Format(id, storage::PageType::kBTreeLeaf);
    p.set_page_lsn(id + 1);
    p.UpdateChecksum();
    co_return p;
  }

 private:
  Simulator& sim_;
};

TEST_P(PoolGeometry, AlwaysServesCorrectPage) {
  auto [mem, ssd, pages, accesses] = GetParam();
  Simulator sim;
  StampFetcher fetcher(sim);
  BufferPoolOptions opts;
  opts.mem_pages = mem;
  opts.ssd_pages = ssd;
  BufferPool pool(sim, opts, &fetcher);
  RunSim(sim, [&]() -> Task<> {
    Random rng(mem * 7 + ssd);
    for (int i = 0; i < accesses; i++) {
      PageId want = rng.Uniform(pages);
      auto ref = co_await pool.GetPage(want);
      EXPECT_TRUE(ref.ok());
      if (ref.ok()) {
        EXPECT_EQ(ref->page()->page_id(), want);
        EXPECT_EQ(ref->page()->page_lsn(), want + 1);
      }
    }
  });
  // Sanity on stats: hits + misses == accesses.
  EXPECT_EQ(pool.stats().accesses(), static_cast<uint64_t>(accesses));
  if (mem + ssd >= pages) {
    // Covering configuration: at most `pages` fetches ever.
    EXPECT_LE(pool.stats().misses, pages);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PoolGeometry,
    ::testing::Values(PoolParam{2, 0, 16, 2000},    // mem only, thrashing
                      PoolParam{4, 8, 64, 3000},    // tiny tiers
                      PoolParam{8, 64, 64, 3000},   // covering ssd
                      PoolParam{64, 0, 32, 2000},   // covering mem
                      PoolParam{3, 5, 200, 4000})); // deep thrash

// ------------------------------------------ Snapshot isolation sweeps

class ChainDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChainDepthSweep, EverySnapshotSeesItsVersion) {
  const int depth = GetParam();
  Simulator sim;
  MemLogSink sink(sim);
  BufferPoolOptions po;
  po.mem_pages = 1 << 16;
  BufferPool pool(sim, po, nullptr);
  Engine eng(sim, &pool, &sink);
  RunSim(sim, [&]() -> Task<> {
    EXPECT_TRUE((co_await eng.Bootstrap()).ok());
    // Keep `depth` snapshots open while writing depth+2 versions.
    std::vector<std::unique_ptr<engine::Transaction>> snaps;
    for (int v = 1; v <= depth; v++) {
      auto w = eng.Begin();
      (void)eng.Put(w.get(), 42, "v" + std::to_string(v));
      EXPECT_TRUE((co_await eng.Commit(w.get())).ok());
      snaps.push_back(eng.Begin(true));  // snapshot right after version v
    }
    // Each snapshot must see exactly its version (the open snapshots
    // hold Trim back).
    for (int v = 1; v <= depth; v++) {
      auto r = co_await eng.Get(snaps[v - 1].get(), 42);
      EXPECT_TRUE(r.ok()) << "snapshot " << v;
      if (r.ok()) {
        EXPECT_EQ(*r, "v" + std::to_string(v));
      }
    }
    for (auto& s : snaps) (void)co_await eng.Commit(s.get());
  });
}

INSTANTIATE_TEST_SUITE_P(Depths, ChainDepthSweep,
                         ::testing::Values(1, 2, 4, 7));

// -------------------------------------- Log pipeline block-size sweep

// (max_block_bytes, loss_prob_pct)
using LogParam = std::tuple<uint64_t, int>;

class LogPipelineSweep : public ::testing::TestWithParam<LogParam> {};

TEST_P(LogPipelineSweep, ReplicaConvergesByteExact) {
  auto [block_bytes, loss_pct] = GetParam();
  Simulator sim;
  xstore::XStore lt(sim);
  xlog::LandingZone lz(sim, sim::DeviceProfile::DirectDrive(), 64 * MiB);
  xlog::XLogOptions xopts;
  xopts.sequence_map_bytes = 512 * KiB;
  xlog::XLogProcess xlog(sim, &lz, &lt, xopts);
  xlog::XLogClientOptions copts;
  copts.max_block_bytes = block_bytes;
  copts.delivery_loss_prob = loss_pct / 100.0;
  xlog::XLogClient client(sim, &lz, &xlog, nullptr, copts);
  xlog.Start();
  client.Start();

  // Produce through a real engine so records are realistic.
  BufferPoolOptions po;
  po.mem_pages = 1 << 16;
  BufferPool pool(sim, po, nullptr);
  Engine eng(sim, &pool, &client);

  BufferPoolOptions rpo;
  rpo.mem_pages = 1 << 16;
  BufferPool replica_pool(sim, rpo, nullptr);
  engine::RedoApplier applier(sim, &replica_pool,
                              engine::RedoApplier::MissPolicy::kMaterialize);
  Engine replica(sim, &replica_pool, nullptr);
  replica.SetReadTsProvider([&] { return applier.applied_commit_ts(); });

  RunSim(sim, [&]() -> Task<> {
    EXPECT_TRUE((co_await eng.Bootstrap()).ok());
    Random rng(block_bytes + loss_pct);
    for (int t = 0; t < 150; t++) {
      auto txn = eng.Begin();
      for (int i = 0; i < 8; i++) {
        (void)eng.Put(txn.get(), rng.Uniform(400),
                      std::string(50 + rng.Uniform(400), 'x'));
      }
      EXPECT_TRUE((co_await eng.Commit(txn.get())).ok());
    }
    (void)co_await client.Flush();
    // Replica consumes everything.
    Lsn pos = engine::kLogStreamStart;
    Lsn target = client.end_lsn();
    int idle = 0;
    while (pos < target && idle < 10000) {
      auto blocks = co_await xlog.Pull(pos, std::nullopt, 1 * MiB);
      if (!blocks.ok() || blocks->empty()) {
        idle++;
        co_await sim::Delay(sim, 2000);
        continue;
      }
      idle = 0;
      for (auto& b : *blocks) {
        auto end = co_await applier.ApplyStream(
            Slice(b.payload()), b.start_lsn,
            applier.applied_lsn().value());
        EXPECT_TRUE(end.ok()) << end.status().ToString();
        if (!end.ok()) co_return;
        applier.applied_lsn().Advance(*end);
        pos = b.start_lsn + b.payload_size;
      }
    }
    EXPECT_GE(pos, target);
    // Replica state must equal primary state.
    auto p_txn = eng.Begin(true);
    auto r_txn = replica.Begin(true);
    for (uint64_t k = 0; k < 400; k++) {
      auto pv = co_await eng.Get(p_txn.get(), k);
      auto rv = co_await replica.Get(r_txn.get(), k);
      EXPECT_EQ(pv.ok(), rv.ok()) << "key " << k;
      if (pv.ok() && rv.ok()) {
        EXPECT_EQ(*pv, *rv);
      }
    }
    (void)co_await eng.Commit(p_txn.get());
    (void)co_await replica.Commit(r_txn.get());
  });
}

INSTANTIATE_TEST_SUITE_P(
    BlocksAndLoss, LogPipelineSweep,
    ::testing::Values(LogParam{4 * KiB, 0},   // tiny blocks
                      LogParam{60 * KiB, 0},  // production block size
                      LogParam{60 * KiB, 30}, // heavy loss: LZ repairs
                      LogParam{16 * KiB, 10},
                      LogParam{60 * KiB, 60}));  // pathological loss

// ------------------------------------------------------------- Zipf sweep

class ZipfThetaSweep : public ::testing::TestWithParam<int> {};

TEST_P(ZipfThetaSweep, SkewIncreasesWithTheta) {
  double theta = GetParam() / 100.0;
  ZipfGenerator zipf(100000, theta, 9);
  std::map<uint64_t, int> counts;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; i++) counts[zipf.Next()]++;
  // Mass of the hottest 1% of the keyspace.
  int hot = 0;
  for (auto& [k, c] : counts) {
    if (k < 1000) hot += c;
  }
  double frac = static_cast<double>(hot) / kDraws;
  // Uniform would give ~1%; any real theta gives much more, growing in
  // theta.
  EXPECT_GT(frac, 0.05);
  if (theta >= 0.9) {
    EXPECT_GT(frac, 0.3);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfThetaSweep,
                         ::testing::Values(50, 70, 90, 99));

}  // namespace
}  // namespace socrates
