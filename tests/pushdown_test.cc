// Computation pushdown tests (RBIO v4 kScanRange): the ScanWhere planner
// against a fake RemoteScanner (eligibility, chunked resume, fence-miss
// retry, mid-scan fallback, write-set overlay), and end to end through a
// real deployment (pushdown vs local plans must agree row for row; v3
// Page Servers degrade transparently; chaos bursts never corrupt
// results).

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/coding.h"
#include "engine/log_sink.h"
#include "engine/txn_engine.h"
#include "service/deployment.h"

namespace socrates {
namespace engine {
namespace {

using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  while (!done && s.Step()) {
  }
  ASSERT_TRUE(done);
}

// Payload whose first 8 bytes are a known aggregate field (3*key, LE)
// followed by a predicate-testable tail.
std::string RowPayload(uint64_t key) {
  std::string p;
  PutFixed64(&p, key * 3);
  p += "tail-" + std::to_string(key);
  return p;
}

// ----------------------------------------------------- fake RemoteScanner

// Evaluates specs over an in-memory copy of the data with the real
// scan_expr functions; knobs inject chunking, fence misses, and errors.
class FakeScanner : public RemoteScanner {
 public:
  bool enabled = true;
  double max_sel = 0.25;
  uint64_t chunk_span = UINT64_MAX;  // keys evaluated per call
  int fence_misses_to_inject = 0;
  int error_after_chunks = -1;  // serve this many chunks, then error
  int calls = 0;
  int chunks_served = 0;
  std::map<uint64_t, std::string> data;

  bool Enabled() const override { return enabled; }
  double MaxSelectivity() const override { return max_sel; }

  Task<Result<RemoteScanChunk>> ScanLeaves(
      PageId, const RemoteScanSpec& spec) override {
    calls++;
    if (fence_misses_to_inject > 0) {
      fence_misses_to_inject--;
      RemoteScanChunk c;
      c.fence_miss = true;
      c.resume_key = spec.start_key;
      co_return c;
    }
    if (error_after_chunks >= 0 && chunks_served >= error_after_chunks) {
      co_return Result<RemoteScanChunk>(
          Status::Unavailable("fake transport error"));
    }
    chunks_served++;
    RemoteScanChunk c;
    uint64_t hi = spec.end_key;
    if (chunk_span != UINT64_MAX &&
        spec.end_key - spec.start_key > chunk_span) {
      hi = spec.start_key + chunk_span;
    }
    for (auto it = data.lower_bound(spec.start_key);
         it != data.end() && it->first < hi; ++it) {
      c.rows_scanned++;
      if (!common::EvalPredicate(spec.predicate, it->first,
                                 Slice(it->second))) {
        continue;
      }
      if (spec.aggregate.enabled()) {
        c.agg.Accumulate(spec.aggregate.fn,
                         common::AggFieldValue(spec.aggregate,
                                               Slice(it->second)));
      } else {
        std::string out;
        spec.projection.Apply(Slice(it->second), &out);
        c.tuples.emplace_back(it->first, std::move(out));
      }
    }
    c.complete = hi >= spec.end_key;
    c.resume_key = hi;
    co_return c;
  }
};

// ---------------------------------------------------------- local fixture

struct EngineFixture {
  Simulator sim;
  MemLogSink sink{sim};
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<Engine> engine;
  FakeScanner fake;

  explicit EngineFixture(uint64_t rows = 400) {
    BufferPoolOptions opts;
    opts.mem_pages = 4096;
    pool = std::make_unique<BufferPool>(sim, opts, nullptr);
    engine = std::make_unique<Engine>(sim, pool.get(), &sink);
    RunSim(sim, [&]() -> Task<> {
      EXPECT_TRUE((co_await engine->Bootstrap()).ok());
      for (uint64_t i = 0; i < rows; i += 64) {
        auto txn = engine->Begin();
        for (uint64_t k = i; k < std::min(rows, i + 64); k++) {
          std::string p = RowPayload(k);
          fake.data[k] = p;
          (void)engine->Put(txn.get(), k, p);
        }
        EXPECT_TRUE((co_await engine->Commit(txn.get())).ok());
      }
    });
  }
};

// Reference evaluation of a tuple-mode filter over [start, end).
std::vector<std::pair<uint64_t, std::string>> Expected(
    const std::map<uint64_t, std::string>& data, uint64_t start,
    uint64_t end, const ScanFilter& f) {
  std::vector<std::pair<uint64_t, std::string>> out;
  for (auto it = data.lower_bound(start);
       it != data.end() && it->first < end; ++it) {
    if (!common::EvalPredicate(f.predicate, it->first,
                               Slice(it->second))) {
      continue;
    }
    std::string v;
    f.projection.Apply(Slice(it->second), &v);
    out.emplace_back(it->first, v);
  }
  return out;
}

// -------------------------------------------------------- local-plan path

TEST(ScanWhereLocalTest, FilterAndProjection) {
  EngineFixture f;
  ScanFilter filter;
  filter.predicate = common::ScanPredicate::KeyModEq(8, 3);
  filter.projection.extents.push_back({8, 6});  // "tail-N" prefix
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin(true);
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_FALSE(r->pushed_down);  // no scanner attached
      EXPECT_EQ(r->rows, Expected(f.fake.data, 0, 400, filter));
      EXPECT_EQ(r->rows.size(), 50u);
      EXPECT_EQ(r->rows[0].first, 3u);
      EXPECT_EQ(r->rows[0].second, "tail-3");
    }
    (void)co_await f.engine->Commit(txn.get());
  });
  EXPECT_EQ(f.engine->stats().filtered_scans, 1u);
  EXPECT_EQ(f.engine->stats().pushdown_scans, 0u);
}

TEST(ScanWhereLocalTest, LimitCapsRows) {
  EngineFixture f;
  ScanFilter filter;
  filter.predicate = common::ScanPredicate::KeyModEq(4, 0);
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin(true);
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 7, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_EQ(r->rows.size(), 7u);
      EXPECT_EQ(r->rows.back().first, 24u);
    }
    (void)co_await f.engine->Commit(txn.get());
  });
}

TEST(ScanWhereLocalTest, Aggregates) {
  EngineFixture f;
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin(true);
    // COUNT of keys % 10 == 5 in [0, 400): 40 rows.
    ScanFilter count;
    count.predicate = common::ScanPredicate::KeyModEq(10, 5);
    count.aggregate = common::ScanAggregate::Count();
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, count);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_TRUE(r->aggregated);
      EXPECT_TRUE(r->rows.empty());
      EXPECT_EQ(r->agg.rows, 40u);
    }
    // SUM of the field (3*key) over the same rows.
    ScanFilter sum = count;
    sum.aggregate = common::ScanAggregate::Sum(0);
    auto r2 = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, sum);
    EXPECT_TRUE(r2.ok());
    if (r2.ok()) {
      uint64_t want = 0;
      for (uint64_t k = 5; k < 400; k += 10) want += k * 3;
      EXPECT_EQ(r2->agg.value, want);
    }
    // MIN/MAX of the field over all rows.
    ScanFilter mm;
    mm.aggregate = common::ScanAggregate::Min(0);
    auto r3 = co_await f.engine->ScanWhere(txn.get(), 10, 20, 0, mm);
    EXPECT_TRUE(r3.ok());
    if (r3.ok()) {
      EXPECT_EQ(r3->agg.value, 30u);
    }
    mm.aggregate = common::ScanAggregate::Max(0);
    auto r4 = co_await f.engine->ScanWhere(txn.get(), 10, 20, 0, mm);
    EXPECT_TRUE(r4.ok());
    if (r4.ok()) {
      EXPECT_EQ(r4->agg.value, 57u);
    }
    (void)co_await f.engine->Commit(txn.get());
  });
}

TEST(ScanWhereLocalTest, WriteSetOverlay) {
  EngineFixture f;
  ScanFilter filter;
  filter.predicate = common::ScanPredicate::KeyModEq(2, 0);  // even keys
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin();
    // Delete a matching row, overwrite another one, and write a brand-new
    // matching key — all uncommitted, all must be reflected.
    EXPECT_TRUE(f.engine->Delete(txn.get(), 4).ok());
    EXPECT_TRUE(f.engine->Put(txn.get(), 6, RowPayload(600)).ok());
    EXPECT_TRUE(f.engine->Put(txn.get(), 1000, RowPayload(1000)).ok());
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 2000, 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      std::map<uint64_t, std::string> want_data = f.fake.data;
      want_data.erase(4);
      want_data[6] = RowPayload(600);
      want_data[1000] = RowPayload(1000);
      EXPECT_EQ(r->rows, Expected(want_data, 0, 2000, filter));
    }
    f.engine->Abort(txn.get());
  });
}

// ------------------------------------------------- planner w/ FakeScanner

TEST(ScanWherePlannerTest, SelectivePredicatePushesDown) {
  EngineFixture f;
  f.engine->SetRemoteScanner(&f.fake);
  ScanFilter filter;
  filter.predicate = common::ScanPredicate::KeyModEq(16, 1);  // ~6%
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin(true);
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_TRUE(r->pushed_down);
      EXPECT_EQ(r->fallbacks, 0u);
      EXPECT_EQ(r->rows, Expected(f.fake.data, 0, 400, filter));
    }
    (void)co_await f.engine->Commit(txn.get());
  });
  EXPECT_GT(f.fake.calls, 0);
  EXPECT_EQ(f.engine->stats().pushdown_scans, 1u);
}

TEST(ScanWherePlannerTest, DensePredicateStaysLocal) {
  EngineFixture f;
  f.engine->SetRemoteScanner(&f.fake);
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin(true);
    // Unfiltered tuple scans and dense predicates (sel > MaxSelectivity)
    // move fewer bytes as raw pages: the planner must not push them.
    ScanFilter all;
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, all);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_FALSE(r->pushed_down);
      EXPECT_EQ(r->rows.size(), 400u);
    }
    ScanFilter dense;
    dense.predicate = common::ScanPredicate::KeyModEq(2, 0);  // 50%
    auto r2 = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, dense);
    EXPECT_TRUE(r2.ok());
    if (r2.ok()) {
      EXPECT_FALSE(r2->pushed_down);
      EXPECT_EQ(r2->rows, Expected(f.fake.data, 0, 400, dense));
    }
    (void)co_await f.engine->Commit(txn.get());
  });
  EXPECT_EQ(f.fake.calls, 0);
}

TEST(ScanWherePlannerTest, AggregatePushesDownEvenUnfiltered) {
  EngineFixture f;
  f.engine->SetRemoteScanner(&f.fake);
  ScanFilter filter;
  filter.aggregate = common::ScanAggregate::Sum(0);
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin(true);
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_TRUE(r->pushed_down);
      uint64_t want = 0;
      for (uint64_t k = 0; k < 400; k++) want += k * 3;
      EXPECT_EQ(r->agg.value, want);
      EXPECT_EQ(r->agg.rows, 400u);
    }
    (void)co_await f.engine->Commit(txn.get());
  });
  EXPECT_GT(f.fake.calls, 0);
}

TEST(ScanWherePlannerTest, AggregateWithWritesInRangeStaysLocal) {
  EngineFixture f;
  f.engine->SetRemoteScanner(&f.fake);
  ScanFilter filter;
  filter.aggregate = common::ScanAggregate::Count();
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin();
    // The server cannot see this uncommitted row; the aggregate must run
    // locally (and count it).
    EXPECT_TRUE(f.engine->Put(txn.get(), 1000, RowPayload(1000)).ok());
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 2000, 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_FALSE(r->pushed_down);
      EXPECT_EQ(r->agg.rows, 401u);
    }
    f.engine->Abort(txn.get());
  });
  EXPECT_EQ(f.fake.calls, 0);
}

TEST(ScanWherePlannerTest, ChunkedResumeCoversWholeRange) {
  EngineFixture f;
  f.engine->SetRemoteScanner(&f.fake);
  f.fake.chunk_span = 64;  // force many chunks
  ScanFilter filter;
  filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin(true);
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_TRUE(r->pushed_down);
      EXPECT_EQ(r->rows, Expected(f.fake.data, 0, 400, filter));
    }
    (void)co_await f.engine->Commit(txn.get());
  });
  EXPECT_GE(f.fake.chunks_served, 6);  // ceil(400/64)
}

TEST(ScanWherePlannerTest, FenceMissRetriesThenSucceeds) {
  EngineFixture f;
  f.engine->SetRemoteScanner(&f.fake);
  f.fake.fence_misses_to_inject = 2;  // below the retry budget
  ScanFilter filter;
  filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin(true);
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_TRUE(r->pushed_down);
      EXPECT_EQ(r->fallbacks, 0u);
      EXPECT_EQ(r->rows, Expected(f.fake.data, 0, 400, filter));
    }
    (void)co_await f.engine->Commit(txn.get());
  });
  EXPECT_GE(f.fake.calls, 3);
}

TEST(ScanWherePlannerTest, PersistentFenceMissFallsBackToLocal) {
  EngineFixture f;
  f.engine->SetRemoteScanner(&f.fake);
  f.fake.fence_misses_to_inject = 1000;  // a split storm that never ends
  ScanFilter filter;
  filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin(true);
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_FALSE(r->pushed_down);
      EXPECT_GE(r->fallbacks, 1u);
      EXPECT_EQ(r->rows, Expected(f.fake.data, 0, 400, filter));
    }
    (void)co_await f.engine->Commit(txn.get());
  });
  EXPECT_EQ(f.engine->stats().pushdown_fallbacks, 1u);
}

TEST(ScanWherePlannerTest, MidScanErrorFallsBackForTheTail) {
  EngineFixture f;
  f.engine->SetRemoteScanner(&f.fake);
  f.fake.chunk_span = 64;
  f.fake.error_after_chunks = 2;  // two good chunks, then the link dies
  ScanFilter filter;
  filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin(true);
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      // Partial remote results + local tail must still be exact.
      EXPECT_TRUE(r->pushed_down);
      EXPECT_GE(r->fallbacks, 1u);
      EXPECT_EQ(r->rows, Expected(f.fake.data, 0, 400, filter));
    }
    (void)co_await f.engine->Commit(txn.get());
  });
}

TEST(ScanWherePlannerTest, AggregateFallbackTailAccumulatesLocally) {
  EngineFixture f;
  f.engine->SetRemoteScanner(&f.fake);
  f.fake.chunk_span = 64;
  f.fake.error_after_chunks = 1;  // one remote chunk, rest local
  ScanFilter filter;
  filter.aggregate = common::ScanAggregate::Sum(0);
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin(true);
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      uint64_t want = 0;
      for (uint64_t k = 0; k < 400; k++) want += k * 3;
      EXPECT_EQ(r->agg.value, want);
      EXPECT_EQ(r->agg.rows, 400u);
    }
    (void)co_await f.engine->Commit(txn.get());
  });
}

// --------------------------------------------- end to end via deployment

service::DeploymentOptions SmallDeployment() {
  service::DeploymentOptions o;
  o.partition_map.pages_per_partition = 8192;
  o.num_page_servers = 1;
  o.compute.mem_pages = 64;  // most leaves are remote
  o.compute.ssd_pages = 128;
  // These tests exercise the kScanRange wire path end to end; pin the
  // legacy selectivity-only gate so the residency-aware planner cannot
  // (correctly!) keep the small warm fixture local. The cost planner has
  // its own tests (ScanWhereCostPlannerTest, residency suites).
  o.compute.pushdown_cost_planning = false;
  return o;
}

Task<> Load(engine::Engine* e, uint64_t n) {
  for (uint64_t i = 0; i < n; i += 64) {
    auto txn = e->Begin();
    for (uint64_t k = i; k < std::min(n, i + 64); k++) {
      (void)e->Put(txn.get(), MakeKey(1, k), RowPayload(k));
    }
    EXPECT_TRUE((co_await e->Commit(txn.get())).ok());
  }
}

// Run the same filtered scan with pushdown and with the scanner detached;
// both plans must agree row for row.
Task<> ComparePlans(engine::Engine* e, uint64_t n,
                    const ScanFilter& filter, bool* pushed) {
  auto txn = e->Begin(true);
  auto remote =
      co_await e->ScanWhere(txn.get(), MakeKey(1, 0), MakeKey(1, n), 0,
                            filter);
  EXPECT_TRUE(remote.ok());
  RemoteScanner* scanner = e->remote_scanner();
  e->SetRemoteScanner(nullptr);
  auto local =
      co_await e->ScanWhere(txn.get(), MakeKey(1, 0), MakeKey(1, n), 0,
                            filter);
  e->SetRemoteScanner(scanner);
  EXPECT_TRUE(local.ok());
  if (remote.ok() && local.ok()) {
    *pushed = remote->pushed_down;
    EXPECT_EQ(remote->rows, local->rows);
    EXPECT_EQ(remote->agg.rows, local->agg.rows);
    EXPECT_EQ(remote->agg.value, local->agg.value);
  }
  (void)co_await e->Commit(txn.get());
}

TEST(PushdownEndToEndTest, TupleScanMatchesLocalPlan) {
  Simulator s;
  service::Deployment d(s, SmallDeployment());
  bool pushed = false;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 3000);
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
    filter.projection.extents.push_back({0, 8});
    co_await ComparePlans(d.primary_engine(), 3000, filter, &pushed);
  });
  EXPECT_TRUE(pushed);
  EXPECT_GT(d.primary()->rbio_client().scans_sent(), 0u);
  EXPECT_GT(d.page_server(0)->scan_requests(), 0u);
  EXPECT_GT(d.page_server(0)->scan_tuples_returned(), 0u);
  d.Stop();
}

TEST(PushdownEndToEndTest, AggregateScanMatchesLocalPlan) {
  Simulator s;
  service::Deployment d(s, SmallDeployment());
  bool pushed = false;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 3000);
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(10, 5);
    filter.aggregate = common::ScanAggregate::Sum(0);
    co_await ComparePlans(d.primary_engine(), 3000, filter, &pushed);
  });
  EXPECT_TRUE(pushed);
  // Aggregate mode streams no tuples: one tiny state per chunk.
  EXPECT_EQ(d.primary()->rbio_client().scan_tuples_received(), 0u);
  EXPECT_GT(d.page_server(0)->scan_rows_scanned(), 0u);
  d.Stop();
}

TEST(PushdownEndToEndTest, UncommittedWritesOverlayPushedResults) {
  Simulator s;
  service::Deployment d(s, SmallDeployment());
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 3000);
    engine::Engine* e = d.primary_engine();
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
    auto txn = e->Begin();
    // The Page Server cannot see these; the overlay must repair the
    // pushed-down stream.
    EXPECT_TRUE(e->Delete(txn.get(), MakeKey(1, 17)).ok());
    EXPECT_TRUE(e->Put(txn.get(), MakeKey(1, 3009), RowPayload(1)).ok());
    auto r = co_await e->ScanWhere(txn.get(), MakeKey(1, 0),
                                   MakeKey(1, 4000), 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_TRUE(r->pushed_down);
      bool saw_deleted = false, saw_new = false;
      for (auto& [k, v] : r->rows) {
        if (k == MakeKey(1, 17)) saw_deleted = true;
        if (k == MakeKey(1, 3009)) saw_new = true;
      }
      EXPECT_FALSE(saw_deleted);
      EXPECT_TRUE(saw_new);
    }
    e->Abort(txn.get());
  });
  d.Stop();
}

TEST(PushdownEndToEndTest, V3PageServerDegradesTransparently) {
  Simulator s;
  service::DeploymentOptions o = SmallDeployment();
  o.page_server.rbio_max_version = 3;  // a not-yet-upgraded server
  service::Deployment d(s, o);
  bool pushed = true;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 3000);
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
    co_await ComparePlans(d.primary_engine(), 3000, filter, &pushed);
  });
  // Results identical (checked in ComparePlans), nothing pushed down,
  // and the v4 client memoized the rejection after one probe.
  EXPECT_FALSE(pushed);
  EXPECT_EQ(d.page_server(0)->scan_requests(), 0u);
  EXPECT_GT(d.primary()->rbio_client().scan_fallbacks(), 0u);
  EXPECT_EQ(d.primary()->rbio_client().scans_sent(), 1u);
  d.Stop();
}

TEST(PushdownEndToEndTest, V5ConjunctionAndMultiAggregatePushdown) {
  Simulator s;
  service::Deployment d(s, SmallDeployment());
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 3000);
    engine::Engine* e = d.primary_engine();
    // v5 vocabulary end to end: key-range ∧ mod predicate, three
    // aggregate fields in one pass. COUNT + SUM(field) + MAX(field)
    // over keys in [500, 2500) with k % 10 == 5.
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyRange(MakeKey(1, 500),
                                                       MakeKey(1, 2500));
    filter.predicate.And(common::ScanPredicate::KeyModEq(10, 5));
    filter.aggregate = common::ScanAggregate::Count();
    filter.extra_aggregates.push_back(common::ScanAggregate::Sum(0));
    filter.extra_aggregates.push_back(common::ScanAggregate::Max(0));
    auto txn = e->Begin(true);
    auto r = co_await e->ScanWhere(txn.get(), MakeKey(1, 0),
                                   MakeKey(1, 3000), 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_TRUE(r->pushed_down);
      // The mod predicate applies to the full key (partition prefix
      // included); compute the reference the same way.
      uint64_t count = 0, sum = 0, mx = 0;
      for (uint64_t k = 500; k < 2500; k++) {
        if (MakeKey(1, k) % 10 != 5) continue;
        count++;
        sum += 3 * k;
        mx = std::max<uint64_t>(mx, 3 * k);
      }
      EXPECT_EQ(r->agg.rows, count);
      EXPECT_EQ(r->extra_aggs.size(), 2u);
      if (r->extra_aggs.size() == 2) {
        EXPECT_EQ(r->extra_aggs[0].value, sum);
        EXPECT_EQ(r->extra_aggs[1].value, mx);
      }
      // The same spec evaluated locally must agree field for field.
      RemoteScanner* scanner = e->remote_scanner();
      e->SetRemoteScanner(nullptr);
      auto local = co_await e->ScanWhere(txn.get(), MakeKey(1, 0),
                                         MakeKey(1, 3000), 0, filter);
      e->SetRemoteScanner(scanner);
      EXPECT_TRUE(local.ok());
      if (local.ok()) {
        EXPECT_EQ(local->agg.rows, r->agg.rows);
        EXPECT_EQ(local->extra_aggs.size(), 2u);
        if (local->extra_aggs.size() == 2 && r->extra_aggs.size() == 2) {
          EXPECT_EQ(local->extra_aggs[0].value, r->extra_aggs[0].value);
          EXPECT_EQ(local->extra_aggs[1].value, r->extra_aggs[1].value);
        }
      }
    }
    (void)co_await e->Commit(txn.get());
  });
  // The key-range ∧ conjunct predicate required a v5 frame on the wire.
  EXPECT_GT(d.primary()->rbio_client().scans_sent(), 0u);
  EXPECT_GT(d.page_server(0)->scan_requests(), 0u);
  d.Stop();
}

TEST(PushdownEndToEndTest, ConfigEpochChangeInvalidatesScanSupportMemo) {
  Simulator s;
  service::DeploymentOptions o = SmallDeployment();
  o.page_server.rbio_max_version = 3;  // scans rejected and memoized
  service::Deployment d(s, o);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 2000);
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
    bool pushed = true;
    co_await ComparePlans(d.primary_engine(), 2000, filter, &pushed);
    EXPECT_FALSE(pushed);
    EXPECT_EQ(d.primary()->rbio_client().scans_sent(), 1u);
    // Memoized: the second scan never touches the wire.
    co_await ComparePlans(d.primary_engine(), 2000, filter, &pushed);
    EXPECT_EQ(d.primary()->rbio_client().scans_sent(), 1u);
    // Reconfigure the partition: promote a hot-standby replica. The
    // endpoint name now resolves to a different physical server, so the
    // config-epoch bump must drop the stale capability memo and let the
    // client probe the replacement.
    EXPECT_TRUE((co_await d.AddPageServerReplica(0)).ok());
    const uint64_t epoch_before = d.config_epoch();
    EXPECT_TRUE((co_await d.FailoverPageServer(0)).ok());
    EXPECT_GT(d.config_epoch(), epoch_before);
    co_await ComparePlans(d.primary_engine(), 2000, filter, &pushed);
    EXPECT_EQ(d.primary()->rbio_client().scans_sent(), 2u);
  });
  d.Stop();
}

TEST(PushdownEndToEndTest, TransientFailuresFallBackWithoutWrongResults) {
  Simulator s;
  service::Deployment d(s, SmallDeployment());
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 3000);
    engine::Engine* e = d.primary_engine();
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
    uint64_t want = 0;
    for (uint64_t k = 1; k < 3000; k += 16) want++;
    uint64_t degraded = 0;
    for (int round = 0; round < 12; round++) {
      // Failure bursts straddling the retry budget: some scans retry
      // through, some degrade to the local path — none return wrong
      // rows.
      d.page_server(0)->InjectTransientFailures(round % 5);
      auto txn = e->Begin(true);
      auto r = co_await e->ScanWhere(txn.get(), MakeKey(1, 0),
                                     MakeKey(1, 3000), 0, filter);
      EXPECT_TRUE(r.ok());
      if (r.ok()) {
        EXPECT_EQ(r->rows.size(), want);
        degraded += r->fallbacks;
      }
      (void)co_await e->Commit(txn.get());
    }
    // The chaos must have actually exercised at least one path end:
    // either a retry succeeded or a fallback happened.
    EXPECT_TRUE(d.primary()->rbio_client().retries() > 0 || degraded > 0);
  });
  d.Stop();
}

TEST(PushdownEndToEndTest, SecondaryScansAtAppliedWatermark) {
  Simulator s;
  service::DeploymentOptions o = SmallDeployment();
  o.num_secondaries = 1;
  service::Deployment d(s, o);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 2000);
    // Let the Secondary catch up to the full load.
    co_await d.secondary(0)->applier()->applied_lsn().WaitFor(
        d.log_client().end_lsn());
    engine::Engine* e = d.secondary(0)->engine();
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
    filter.aggregate = common::ScanAggregate::Count();
    auto txn = e->Begin(true);
    auto r = co_await e->ScanWhere(txn.get(), MakeKey(1, 0),
                                   MakeKey(1, 2000), 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_TRUE(r->pushed_down);
      uint64_t want = 0;
      for (uint64_t k = 1; k < 2000; k += 16) want++;
      EXPECT_EQ(r->agg.rows, want);
    }
    (void)co_await e->Commit(txn.get());
  });
  EXPECT_GT(d.secondary(0)->rbio_client().scans_sent(), 0u);
  d.Stop();
}

// ------------------------------------- residency-aware cost planner

// FakeScanner with a test-controlled cost model (the base class keeps
// the model disabled so the legacy-gate suites above stay legacy).
class CostFakeScanner : public FakeScanner {
 public:
  PushdownCostModel cm;

  CostFakeScanner() { cm.enabled = true; }
  PushdownCostModel CostModel() const override { return cm; }

  Task<Result<RemoteScanChunk>> ScanLeaves(
      PageId leaf, const RemoteScanSpec& spec) override {
    auto r = co_await FakeScanner::ScanLeaves(leaf, spec);
    if (r.ok() && !r->fence_miss) {
      // The EWMA denominator: pretend one leaf per 64 keys evaluated.
      uint64_t span = (r->resume_key > spec.start_key
                           ? r->resume_key - spec.start_key
                           : 64);
      r->pages_scanned = (span + 63) / 64;
    }
    co_return r;
  }
};

// Deployment sized so residency is test-controlled: the compute memory
// tier either holds the whole fixture (warm) or is emptied by a
// non-recoverable restart (cold).
service::DeploymentOptions PlannerDeployment() {
  service::DeploymentOptions o;
  o.partition_map.pages_per_partition = 8192;
  o.num_page_servers = 1;
  o.compute.mem_pages = 2048;
  o.compute.ssd_pages = 8192;
  o.compute.warmup_after_recovery = false;
  o.compute.rbpex_recoverable = false;  // restart = fully cold tiers
  return o;  // pushdown_cost_planning stays at its default (on)
}

// Run one cost-planned scan, snapshot the plan the engine chose, then
// compare against the detached-scanner local plan row for row.
Task<> PlannedScanAndCompare(engine::Engine* e, uint64_t n,
                             const ScanFilter& filter,
                             FilteredScanResult* planned,
                             ScanPlanDebug* plan) {
  auto txn = e->Begin(true);
  auto remote = co_await e->ScanWhere(txn.get(), MakeKey(1, 0),
                                      MakeKey(1, n), 0, filter);
  EXPECT_TRUE(remote.ok());
  *plan = e->last_scan_plan();  // before the local compare overwrites it
  RemoteScanner* scanner = e->remote_scanner();
  e->SetRemoteScanner(nullptr);
  auto local = co_await e->ScanWhere(txn.get(), MakeKey(1, 0),
                                     MakeKey(1, n), 0, filter);
  e->SetRemoteScanner(scanner);
  EXPECT_TRUE(local.ok());
  if (remote.ok() && local.ok()) {
    EXPECT_EQ(remote->rows, local->rows);
    EXPECT_EQ(remote->agg.rows, local->agg.rows);
    EXPECT_EQ(remote->agg.value, local->agg.value);
    *planned = std::move(*remote);
  }
  (void)co_await e->Commit(txn.get());
}

TEST(ScanCostPlannerTest, WarmRangeStaysLocal) {
  Simulator s;
  service::Deployment d(s, PlannerDeployment());
  FilteredScanResult r;
  ScanPlanDebug plan;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 3000);  // loads through the pool
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
    filter.projection.extents.push_back({0, 8});
    co_await PlannedScanAndCompare(d.primary_engine(), 3000, filter, &r,
                                   &plan);
  });
  // PR 8's warm inversion, eliminated: the probe sees the range resident
  // and the planner keeps it on the memory tier instead of paying RBIO
  // round trips for data that is already here.
  EXPECT_EQ(plan.kind, ScanPlanDebug::Kind::kLocal);
  EXPECT_GT(plan.resident_frac, 0.9);
  EXPECT_LT(plan.est_local_us, plan.est_push_us);
  EXPECT_FALSE(r.pushed_down);
  EXPECT_EQ(d.primary()->rbio_client().scans_sent(), 0u);
  d.Stop();
}

TEST(ScanCostPlannerTest, ColdRangePushesDown) {
  Simulator s;
  service::Deployment d(s, PlannerDeployment());
  FilteredScanResult r;
  ScanPlanDebug plan;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 3000);
    EXPECT_TRUE((co_await d.Checkpoint()).ok());
    // Non-recoverable RBPEX: the restart empties both compute tiers.
    EXPECT_TRUE((co_await d.RestartPrimary()).ok());
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
    filter.projection.extents.push_back({0, 8});
    co_await PlannedScanAndCompare(d.primary_engine(), 3000, filter, &r,
                                   &plan);
  });
  EXPECT_EQ(plan.kind, ScanPlanDebug::Kind::kPushdown);
  EXPECT_LT(plan.resident_frac, 0.5);
  EXPECT_LT(plan.est_push_us, plan.est_local_us);
  EXPECT_TRUE(r.pushed_down);
  EXPECT_GT(d.primary()->rbio_client().scans_sent(), 0u);
  d.Stop();
}

TEST(ScanCostPlannerTest, MixedResidencyPicksHybrid) {
  Simulator s;
  service::Deployment d(s, PlannerDeployment());
  FilteredScanResult r;
  ScanPlanDebug plan;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 6000);
    EXPECT_TRUE((co_await d.Checkpoint()).ok());
    EXPECT_TRUE((co_await d.RestartPrimary()).ok());
    engine::Engine* e = d.primary_engine();
    // Warm exactly the first half with a scanner-detached local scan.
    RemoteScanner* scanner = e->remote_scanner();
    e->SetRemoteScanner(nullptr);
    {
      auto txn = e->Begin(true);
      ScanFilter all;
      auto warm = co_await e->ScanWhere(txn.get(), MakeKey(1, 0),
                                        MakeKey(1, 3000), 0, all);
      EXPECT_TRUE(warm.ok());
      (void)co_await e->Commit(txn.get());
    }
    e->SetRemoteScanner(scanner);
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
    filter.projection.extents.push_back({0, 8});
    co_await PlannedScanAndCompare(e, 6000, filter, &r, &plan);
  });
  // Warm prefix read locally, cold suffix pushed: one plan, both paths.
  EXPECT_EQ(plan.kind, ScanPlanDebug::Kind::kHybrid);
  EXPECT_GT(plan.split_key, MakeKey(1, 1500));
  EXPECT_LT(plan.split_key, MakeKey(1, 4500));
  EXPECT_LT(plan.est_hybrid_us, plan.est_local_us);
  EXPECT_LT(plan.est_hybrid_us, plan.est_push_us);
  EXPECT_TRUE(r.pushed_down);
  EXPECT_EQ(d.primary_engine()->stats().hybrid_scans, 1u);
  EXPECT_GT(d.primary()->rbio_client().scans_sent(), 0u);
  d.Stop();
}

TEST(ScanCostPlannerTest, LegacyGateWhenModelDisabled) {
  EngineFixture f;
  f.engine->SetRemoteScanner(&f.fake);  // base fake: cost model off
  ScanFilter filter;
  filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
  RunSim(f.sim, [&]() -> Task<> {
    auto txn = f.engine->Begin(true);
    auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, filter);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_TRUE(r->pushed_down);
    }
    (void)co_await f.engine->Commit(txn.get());
  });
  EXPECT_EQ(f.engine->last_scan_plan().kind, ScanPlanDebug::Kind::kLegacy);
}

TEST(ScanCostPlannerTest, EwmaFeedbackConvergesToObservedCost) {
  EngineFixture f;
  CostFakeScanner scanner;
  scanner.data = f.fake.data;
  // Mis-tune the model toward pushdown: the fake remote path is
  // virtually free, so feedback must drive remote_corr to the clamp
  // floor and keep the plan pinned to the observed-cheaper path.
  scanner.cm.round_trip_us = 1;
  scanner.cm.remote_leaf_us = 0.5;
  f.engine->SetRemoteScanner(&scanner);
  ScanFilter filter;
  filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
  std::vector<double> corrs;
  RunSim(f.sim, [&]() -> Task<> {
    for (int i = 0; i < 6; i++) {
      auto txn = f.engine->Begin(true);
      auto r = co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, filter);
      EXPECT_TRUE(r.ok());
      if (r.ok()) {
        EXPECT_TRUE(r->pushed_down);
      }
      corrs.push_back(f.engine->last_scan_plan().remote_corr);
      EXPECT_EQ(f.engine->last_scan_plan().kind,
                ScanPlanDebug::Kind::kPushdown);
      (void)co_await f.engine->Commit(txn.get());
    }
  });
  ASSERT_EQ(corrs.size(), 6u);
  // First plan has no feedback yet.
  EXPECT_DOUBLE_EQ(corrs[0], 1.0);
  // The observed/modeled ratio of a free remote path clamps at 0.05;
  // the first observation seeds the EWMA directly, then it holds.
  EXPECT_NEAR(corrs[1], 0.05, 1e-9);
  for (size_t i = 2; i < corrs.size(); i++) {
    EXPECT_NEAR(corrs[i], 0.05, 1e-9);
  }
}

TEST(ScanCostPlannerTest, EwmaBlendsLaterObservations) {
  // Unit check of the blend itself: seed ratio r1, then alpha-blend r2.
  EngineFixture f;
  CostFakeScanner scanner;
  scanner.data = f.fake.data;
  scanner.cm.round_trip_us = 1;
  scanner.cm.remote_leaf_us = 0.5;
  scanner.cm.ewma_alpha = 0.3;
  f.engine->SetRemoteScanner(&scanner);
  ScanFilter filter;
  filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
  RunSim(f.sim, [&]() -> Task<> {
    // Two scans over DIFFERENT ranges hash to independent EWMA buckets:
    // feedback for one range never contaminates another.
    auto txn = f.engine->Begin(true);
    (void)co_await f.engine->ScanWhere(txn.get(), 0, 400, 0, filter);
    double corr_a = f.engine->last_scan_plan().remote_corr;
    (void)co_await f.engine->ScanWhere(txn.get(), 0, 200, 0, filter);
    double corr_b = f.engine->last_scan_plan().remote_corr;
    // The second range had no prior feedback of its own.
    EXPECT_DOUBLE_EQ(corr_a, 1.0);
    EXPECT_DOUBLE_EQ(corr_b, 1.0);
    (void)co_await f.engine->Commit(txn.get());
  });
}

// --------------------------------------------- Page Server admission

// A deployment whose Page Server is easy to degrade: a tiny server
// memory tier (point reads fall through to the covering RBPEX, so their
// service times are SSD-bound) and a p99 health bar set below that
// SSD-bound service time, so a full sample window marks the server
// degraded deterministically.
service::DeploymentOptions AdmissionDeployment() {
  service::DeploymentOptions o;
  o.partition_map.pages_per_partition = 8192;
  o.num_page_servers = 1;
  o.compute.mem_pages = 96;  // compute misses reach the server
  o.compute.ssd_pages = 128;
  o.compute.pushdown_cost_planning = false;  // force the wire path
  o.compute.warmup_after_recovery = false;   // restart = fully cold tiers
  o.compute.rbpex_recoverable = false;
  o.page_server.mem_pages = 48;  // server misses reach the SSD tier
  o.page_server.scan_admission_p99_us = 2;
  return o;
}

// Serve `n` cold point reads so the server's GetPage p99 window fills
// with slow (XStore-bound) samples.
Task<> ColdPointReads(engine::Engine* e, uint64_t n, uint64_t range) {
  auto txn = e->Begin(true);
  for (uint64_t i = 0; i < n; i++) {
    auto v = co_await e->Get(txn.get(), MakeKey(1, (i * 97) % range));
    EXPECT_TRUE(v.ok());
  }
  (void)co_await e->Commit(txn.get());
}

TEST(ScanAdmissionTest, HealthyServerAdmitsImmediately) {
  Simulator s;
  service::DeploymentOptions o = AdmissionDeployment();
  o.page_server.scan_admission_p99_us = 0;       // disable p99 trigger
  o.page_server.scan_admission_getpage_depth = 0;  // disable depth trigger
  service::Deployment d(s, o);
  bool pushed = false;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 3000);
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
    co_await ComparePlans(d.primary_engine(), 3000, filter, &pushed);
  });
  EXPECT_TRUE(pushed);
  EXPECT_EQ(d.page_server(0)->scans_queued(), 0u);
  EXPECT_EQ(d.page_server(0)->scans_rejected(), 0u);
  d.Stop();
}

TEST(ScanAdmissionTest, DegradedServerQueuesScansBehindTokenBucket) {
  Simulator s;
  service::Deployment d(s, AdmissionDeployment());
  bool pushed = false;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 3000);
    EXPECT_TRUE((co_await d.Checkpoint()).ok());
    // Cold restart so point reads actually leave the compute tier, then
    // fill the server's GetPage window with slow XStore-bound reads.
    EXPECT_TRUE((co_await d.RestartPrimary()).ok());
    co_await ColdPointReads(d.primary_engine(), 32, 3000);
    EXPECT_GT(d.page_server(0)->recent_getpage_p99_us(), 2u);
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
    co_await ComparePlans(d.primary_engine(), 3000, filter, &pushed);
  });
  // The scan was admitted — after paying the token bucket, not shed.
  EXPECT_TRUE(pushed);
  EXPECT_GT(d.page_server(0)->scans_queued(), 0u);
  EXPECT_EQ(d.page_server(0)->scans_rejected(), 0u);
  EXPECT_GT(d.page_server(0)->scan_queue_wait_us().max(), 0.0);
  d.Stop();
}

TEST(ScanAdmissionTest, OverloadShedsScanAndClientFallsBackEqual) {
  Simulator s;
  service::DeploymentOptions o = AdmissionDeployment();
  // A token every ~30 minutes: every degraded-window scan is shed.
  o.page_server.scan_admission_tokens_per_s = 0.0005;
  service::Deployment d(s, o);
  bool pushed = true;
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await Load(d.primary_engine(), 3000);
    EXPECT_TRUE((co_await d.Checkpoint()).ok());
    EXPECT_TRUE((co_await d.RestartPrimary()).ok());
    co_await ColdPointReads(d.primary_engine(), 32, 3000);
    ScanFilter filter;
    filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
    // Cross-plan equality under kOverloaded: the shed scan falls back
    // to the local page path and must lose no rows.
    co_await ComparePlans(d.primary_engine(), 3000, filter, &pushed);
    EXPECT_EQ(d.page_server(0)->scans_rejected(), 1u);
    const uint64_t served_after_shed = d.page_server(0)->scan_requests();
    // Within the overload backoff the client doesn't even try the wire.
    bool pushed2 = true;
    co_await ComparePlans(d.primary_engine(), 3000, filter, &pushed2);
    EXPECT_FALSE(pushed2);
    EXPECT_EQ(d.page_server(0)->scan_requests(), served_after_shed);
    // Past the backoff the endpoint is probed again (the memo is
    // temporary, unlike the NotSupported version ladder).
    co_await sim::Delay(s, 60 * 1000);
    bool pushed3 = true;
    co_await ComparePlans(d.primary_engine(), 3000, filter, &pushed3);
    EXPECT_GT(d.page_server(0)->scan_requests(), served_after_shed);
  });
  EXPECT_FALSE(pushed);  // first scan fell back locally
  EXPECT_GT(d.primary()->rbio_client().scans_overloaded(), 0u);
  EXPECT_GT(d.primary_engine()->stats().pushdown_overloaded, 0u);
  EXPECT_GT(d.primary_engine()->stats().pushdown_fallbacks, 0u);
  d.Stop();
}

TEST(ScanAdmissionTest, PointReadP99DefendedWhileScansShed) {
  // Identical interference runs, admission on vs off; the defended
  // server must not serve point reads any worse than the undefended one.
  auto run = [](bool admission, uint64_t* queued_or_shed) {
    Simulator s;
    service::DeploymentOptions o = AdmissionDeployment();
    o.page_server.scan_admission_enabled = admission;
    o.page_server.scan_admission_tokens_per_s = 0.0005;
    service::Deployment d(s, o);
    double p99 = 0;
    RunSim(s, [&]() -> Task<> {
      EXPECT_TRUE((co_await d.Start()).ok());
      co_await Load(d.primary_engine(), 3000);
      EXPECT_TRUE((co_await d.Checkpoint()).ok());
      EXPECT_TRUE((co_await d.RestartPrimary()).ok());
      engine::Engine* e = d.primary_engine();
      // Degrade the window, then interleave scans with point reads.
      co_await ColdPointReads(e, 32, 3000);
      ScanFilter filter;
      filter.predicate = common::ScanPredicate::KeyModEq(16, 1);
      for (int round = 0; round < 4; round++) {
        auto txn = e->Begin(true);
        auto r = co_await e->ScanWhere(txn.get(), MakeKey(1, 0),
                                       MakeKey(1, 3000), 0, filter);
        EXPECT_TRUE(r.ok());
        (void)co_await e->Commit(txn.get());
        co_await ColdPointReads(e, 16, 3000);
      }
      p99 = d.page_server(0)->getpage_service_us().Percentile(99.0);
      *queued_or_shed = d.page_server(0)->scans_queued() +
                       d.page_server(0)->scans_rejected();
    });
    d.Stop();
    return p99;
  };
  uint64_t on_gated = 0, off_gated = 0;
  double p99_on = run(true, &on_gated);
  double p99_off = run(false, &off_gated);
  EXPECT_GT(on_gated, 0u);   // admission actually intervened
  EXPECT_EQ(off_gated, 0u);  // counterfactual ran ungated
  EXPECT_LE(p99_on, p99_off * 1.05);
}

}  // namespace
}  // namespace engine
}  // namespace socrates
