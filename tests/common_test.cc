// Unit tests for src/common: Status/Result, Slice, coding, CRC32-C,
// Random/Zipf, Histogram.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/coding.h"
#include "common/compress.h"
#include "common/scan_expr.h"
#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace socrates {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("missing page");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing page");
  EXPECT_EQ(s.ToString(), "NotFound: missing page");

  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::OutOfSpace().IsOutOfSpace());
  EXPECT_TRUE(Status::Shutdown().IsShutdown());
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto inner = [](bool fail) -> Status {
    if (fail) return Status::IOError("disk gone");
    return Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    SOCRATES_RETURN_IF_ERROR(inner(fail));
    return Status::OK();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_TRUE(outer(true).IsIOError());
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ----------------------------------------------------------------- Slice

TEST(SliceTest, Basics) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_EQ(s.ToString(), "hello");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, Compare) {
  EXPECT_TRUE(Slice("a") < Slice("b"));
  EXPECT_TRUE(Slice("a") < Slice("aa"));
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
}

// ---------------------------------------------------------------- Coding

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  Slice in(buf);
  uint16_t a;
  uint32_t b;
  uint64_t c;
  ASSERT_TRUE(GetFixed16(&in, &a));
  ASSERT_TRUE(GetFixed32(&in, &b));
  ASSERT_TRUE(GetFixed64(&in, &c));
  EXPECT_EQ(a, 0xBEEF);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, TruncatedReadsFail) {
  std::string buf;
  PutFixed32(&buf, 7);
  Slice in(buf.data(), 3);
  uint32_t v;
  EXPECT_FALSE(GetFixed32(&in, &v));
  uint64_t w;
  EXPECT_FALSE(GetFixed64(&in, &w));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("alpha"));
  PutLengthPrefixed(&buf, Slice(""));
  PutLengthPrefixed(&buf, Slice("omega"));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "alpha");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.ToString(), "omega");
  EXPECT_FALSE(GetLengthPrefixed(&in, &a));
}

TEST(CodingTest, LengthPrefixedTruncated) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("abcdef"));
  Slice in(buf.data(), buf.size() - 2);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

// ----------------------------------------------------------------- CRC32C

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
  // 32 zero bytes -> 0x8A9136AA.
  char zeros[32] = {0};
  EXPECT_EQ(crc32c::Value(zeros, 32), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendEquivalence) {
  const char* data = "hello crc world";
  uint32_t whole = crc32c::Value(data, 15);
  uint32_t split = crc32c::Extend(crc32c::Value(data, 7), data + 7, 8);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskUnmaskRoundTrip) {
  uint32_t crc = crc32c::Value("payload", 7);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data(512, 'x');
  uint32_t before = crc32c::Value(data.data(), data.size());
  data[100] ^= 0x40;
  EXPECT_NE(before, crc32c::Value(data.data(), data.size()));
}

// --------------------------------------------------------------- Compress

TEST(CompressTest, RoundTripRepetitive) {
  std::string raw;
  for (int i = 0; i < 100; i++) raw += "commit-record-payload-";
  std::string packed;
  compress::Compress(Slice(raw), &packed);
  EXPECT_LT(packed.size(), raw.size() / 2);
  std::string back;
  ASSERT_TRUE(compress::Decompress(Slice(packed), raw.size(), &back).ok());
  EXPECT_EQ(back, raw);
}

TEST(CompressTest, RoundTripIncompressibleAndEmpty) {
  Random rng(7);
  std::string raw;
  for (int i = 0; i < 4096; i++) {
    raw.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  std::string packed;
  compress::Compress(Slice(raw), &packed);
  std::string back;
  ASSERT_TRUE(compress::Decompress(Slice(packed), raw.size(), &back).ok());
  EXPECT_EQ(back, raw);

  std::string none, out;
  compress::Compress(Slice(), &none);
  ASSERT_TRUE(compress::Decompress(Slice(none), 0, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(CompressTest, DeterministicOutput) {
  std::string raw(1000, 'u');
  raw += "tail-of-block";
  std::string a, b;
  compress::Compress(Slice(raw), &a);
  compress::Compress(Slice(raw), &b);
  EXPECT_EQ(a, b);
}

TEST(CompressTest, CorruptStreamsRejected) {
  std::string raw(500, 'z');
  std::string packed;
  compress::Compress(Slice(raw), &packed);
  std::string out;
  // Truncated stream.
  EXPECT_FALSE(compress::Decompress(Slice(packed.data(), packed.size() / 2),
                                    raw.size(), &out)
                   .ok());
  // Wrong raw length (both directions).
  EXPECT_FALSE(
      compress::Decompress(Slice(packed), raw.size() + 1, &out).ok());
  EXPECT_FALSE(
      compress::Decompress(Slice(packed), raw.size() - 1, &out).ok());
}

// ----------------------------------------------------------------- Random

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123), c(124);
  bool differ = false;
  for (int i = 0; i < 100; i++) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(RandomTest, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 10000; i++) {
    uint64_t v = r.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(9);
  double sum = 0;
  for (int i = 0; i < 100000; i++) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RandomTest, ExponentialMean) {
  Random r(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; i++) sum += r.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RandomTest, LogNormalMedian) {
  Random r(13);
  std::vector<double> v;
  const int n = 100001;
  v.reserve(n);
  for (int i = 0; i < n; i++) v.push_back(r.LogNormal(100.0, 0.3));
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  EXPECT_NEAR(v[n / 2], 100.0, 3.0);
}

TEST(ZipfTest, SkewConcentratesOnHotItems) {
  ZipfGenerator zipf(1000000, 0.99, 17);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; i++) counts[zipf.Next()]++;
  // Item 0 must be by far the hottest; top-10 items should cover a large
  // fraction of all draws under theta=0.99.
  int top10 = 0;
  for (uint64_t k = 0; k < 10; k++) top10 += counts.count(k) ? counts[k] : 0;
  EXPECT_GT(counts[0], n / 50);
  EXPECT_GT(top10, n / 5);
}

TEST(ZipfTest, ValuesInRange) {
  ZipfGenerator zipf(100, 0.8, 5);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(zipf.Next(), 100u);
  }
}

TEST(ZipfTest, LargeKeyspaceApproximation) {
  // Exercises the approximate-zeta path (n > 2^22).
  ZipfGenerator zipf(1ull << 28, 0.9, 3);
  uint64_t max_seen = 0;
  for (int i = 0; i < 10000; i++) max_seen = std::max(max_seen, zipf.Next());
  EXPECT_LT(max_seen, 1ull << 28);
  // Skewed: some draw should be far out in the tail but most near zero.
  int small = 0;
  for (int i = 0; i < 10000; i++) {
    if (zipf.Next() < 1000) small++;
  }
  // Under theta=0.9, P(key < 1000) ~ (1000/n)^0.1 ~ 29%; far above uniform
  // (which would be ~0%). Loose bound to stay robust to the approximation.
  EXPECT_GT(small, 1000);
}

TEST(ShuffleTest, PermutationPreserved) {
  Random r(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto orig = v;
  Shuffle(&v, &r);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; i++) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.Median(), 50.0, 5.0);
  EXPECT_NEAR(h.Percentile(95), 95.0, 8.0);
}

TEST(HistogramTest, MergeMatchesCombined) {
  Histogram a, b, c;
  Random r(31);
  for (int i = 0; i < 5000; i++) {
    double v = r.LogNormal(100, 0.5);
    if (i % 2 == 0) a.Add(v);
    else b.Add(v);
    c.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), c.count());
  EXPECT_NEAR(a.mean(), c.mean(), 1e-9 * c.mean());
  EXPECT_NEAR(a.Percentile(99), c.Percentile(99), 1e-9);
}

TEST(HistogramTest, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; i++) h.Add(42);
  EXPECT_NEAR(h.stddev(), 0.0, 1e-6);
  EXPECT_EQ(h.min(), 42.0);
  EXPECT_EQ(h.max(), 42.0);
}

TEST(HistogramTest, PercentileMonotone) {
  Histogram h;
  Random r(37);
  for (int i = 0; i < 10000; i++) h.Add(r.LogNormal(500, 0.8));
  double prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(prev, h.max());
}

TEST(CounterStatsTest, HitRate) {
  CounterStats s;
  EXPECT_EQ(s.HitRate(), 0.0);
  s.hits = 3;
  s.misses = 1;
  EXPECT_DOUBLE_EQ(s.HitRate(), 0.75);
}

// ----------------------------------------------- scan expressions (v5)

TEST(ScanExprV5Test, KeyRangeEval) {
  auto p = common::ScanPredicate::KeyRange(10, 20);
  EXPECT_TRUE(p.NeedsV5());
  EXPECT_FALSE(common::EvalPredicate(p, 9, Slice()));
  EXPECT_TRUE(common::EvalPredicate(p, 10, Slice()));
  EXPECT_TRUE(common::EvalPredicate(p, 19, Slice()));
  EXPECT_FALSE(common::EvalPredicate(p, 20, Slice()));
  // hi == 0: unbounded above.
  auto open = common::ScanPredicate::KeyRange(100, 0);
  EXPECT_TRUE(common::EvalPredicate(open, UINT64_MAX, Slice()));
  EXPECT_FALSE(common::EvalPredicate(open, 99, Slice()));
}

TEST(ScanExprV5Test, ConjunctionEval) {
  std::string payload = "\x07rest";
  auto p = common::ScanPredicate::KeyModEq(2, 0);
  p.And(common::ScanPredicate::PayloadByteEq(0, 7));
  EXPECT_TRUE(p.NeedsV5());
  EXPECT_TRUE(common::EvalPredicate(p, 4, Slice(payload)));
  EXPECT_FALSE(common::EvalPredicate(p, 5, Slice(payload)));  // odd key
  EXPECT_FALSE(common::EvalPredicate(p, 4, Slice("xrest")));  // byte miss
  // And() flattens chains: (a AND b) AND c carries both extra terms.
  auto q = common::ScanPredicate::KeyRange(0, 100);
  q.And(p);
  EXPECT_EQ(q.conjuncts.size(), 2u);
  EXPECT_TRUE(common::EvalPredicate(q, 4, Slice(payload)));
  EXPECT_FALSE(common::EvalPredicate(q, 102, Slice(payload)));
}

TEST(ScanExprV5Test, V4PredicatesDoNotNeedV5) {
  EXPECT_FALSE(common::ScanPredicate::All().NeedsV5());
  EXPECT_FALSE(common::ScanPredicate::KeyModEq(8, 1).NeedsV5());
  EXPECT_FALSE(common::ScanPredicate::PayloadByteEq(3, 9).NeedsV5());
  EXPECT_FALSE(common::ScanPredicate::PayloadByteLt(3, 9).NeedsV5());
}

TEST(ScanExprV5Test, RangeAwareModSelectivityClamps) {
  // Full-range prior: 1/1000.
  auto p = common::ScanPredicate::KeyModEq(1000, 5);
  EXPECT_DOUBLE_EQ(common::EstimatedSelectivity(p), 0.001);
  // A 10-key window holds exactly one hit (key 5): density 1/10, three
  // orders denser than the prior — the satellite fix.
  EXPECT_DOUBLE_EQ(common::EstimatedSelectivity(p, 0, 10), 0.1);
  // The same window placed past the hit holds none.
  EXPECT_DOUBLE_EQ(common::EstimatedSelectivity(p, 6, 16), 0.0);
  // A wide window converges back to the prior.
  EXPECT_NEAR(common::EstimatedSelectivity(p, 0, 100000), 0.001, 1e-5);
  // Unbounded range falls back to the prior.
  EXPECT_DOUBLE_EQ(common::EstimatedSelectivity(p, 0, 0), 0.001);
}

TEST(ScanExprV5Test, RangeAwareKeyRangeSelectivityIsOverlap) {
  auto p = common::ScanPredicate::KeyRange(50, 150);
  // Without range context the key-range term is uninformative.
  EXPECT_DOUBLE_EQ(common::EstimatedSelectivity(p), 1.0);
  EXPECT_DOUBLE_EQ(common::EstimatedSelectivity(p, 0, 100), 0.5);
  EXPECT_DOUBLE_EQ(common::EstimatedSelectivity(p, 100, 200), 0.5);
  EXPECT_DOUBLE_EQ(common::EstimatedSelectivity(p, 200, 300), 0.0);
  EXPECT_DOUBLE_EQ(common::EstimatedSelectivity(p, 60, 140), 1.0);
}

TEST(ScanExprV5Test, PredicateV5CodecRoundTrip) {
  auto p = common::ScanPredicate::KeyRange(100, 900);
  p.And(common::ScanPredicate::KeyModEq(7, 3));
  p.And(common::ScanPredicate::PayloadByteLt(12, 200));
  std::string wire;
  common::EncodePredicateV5(&wire, p);
  Slice in(wire);
  common::ScanPredicate out;
  ASSERT_TRUE(common::DecodePredicateV5(&in, &out).ok());
  EXPECT_EQ(out.op, common::PredOp::kKeyRange);
  EXPECT_EQ(out.a, 100u);
  EXPECT_EQ(out.b, 900u);
  ASSERT_EQ(out.conjuncts.size(), 2u);
  EXPECT_EQ(out.conjuncts[0].op, common::PredOp::kKeyModEq);
  EXPECT_EQ(out.conjuncts[0].a, 7u);
  EXPECT_EQ(out.conjuncts[1].op, common::PredOp::kPayloadByteLt);
  // Truncations rejected, never mis-read.
  for (size_t cut = 0; cut + 1 < wire.size(); cut++) {
    Slice t(wire.data(), cut);
    common::ScanPredicate scratch;
    EXPECT_FALSE(common::DecodePredicateV5(&t, &scratch).ok());
  }
}

TEST(ScanExprV5Test, V4CodecRejectsV5Vocabulary) {
  // The frozen v4 decoder answers NotSupported for a v5 op byte — the
  // negotiation signal an un-upgraded server sends a too-new client.
  std::string wire;
  common::EncodePredicate(&wire, common::ScanPredicate::KeyRange(1, 2));
  Slice in(wire);
  common::ScanPredicate out;
  EXPECT_TRUE(common::DecodePredicate(&in, &out).IsNotSupported());
}

TEST(ScanExprV5Test, AggregateListCodecRoundTrip) {
  common::ScanAggregateList aggs;
  aggs.push_back(common::ScanAggregate::Count());
  aggs.push_back(common::ScanAggregate::Sum(8));
  aggs.push_back(common::ScanAggregate::Max(16));
  std::string wire;
  common::EncodeAggregateListV5(&wire, aggs);
  Slice in(wire);
  common::ScanAggregateList out;
  ASSERT_TRUE(common::DecodeAggregateListV5(&in, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].fn, common::AggFn::kCount);
  EXPECT_EQ(out[1].fn, common::AggFn::kSum);
  EXPECT_EQ(out[1].field_offset, 8u);
  EXPECT_EQ(out[2].fn, common::AggFn::kMax);
  EXPECT_EQ(out[2].field_offset, 16u);
}

TEST(ScanExprV5Test, MultiAggOnePassMatchesScalarRuns) {
  // One pass over rows with a 3-spec list == three scalar passes.
  common::ScanAggregateList aggs;
  aggs.push_back(common::ScanAggregate::Count());
  aggs.push_back(common::ScanAggregate::Sum(0));
  aggs.push_back(common::ScanAggregate::Min(0));
  std::vector<common::AggState> multi(aggs.size());
  common::AggState scalar[3];
  for (uint64_t k = 1; k <= 100; k++) {
    std::string payload;
    PutFixed64(&payload, k * 7);
    for (size_t i = 0; i < aggs.size(); i++) {
      uint64_t v = common::AggFieldValue(aggs[i], Slice(payload));
      multi[i].Accumulate(aggs[i].fn, v);
      scalar[i].Accumulate(aggs[i].fn, v);
    }
  }
  for (size_t i = 0; i < aggs.size(); i++) {
    EXPECT_EQ(multi[i].rows, scalar[i].rows);
    EXPECT_EQ(multi[i].value, scalar[i].value);
  }
  EXPECT_EQ(multi[0].rows, 100u);
  EXPECT_EQ(multi[1].value, 7u * (100u * 101u / 2u));
  EXPECT_EQ(multi[2].value, 7u);
}

}  // namespace
}  // namespace socrates
