// Checkpoint pipeline tests (§4.6): the parallel paced write-back path
// on Page Servers. Covers the capture-generation lost-update guard,
// byte-equality of the pipelined path against the serial order,
// crash-mid-checkpoint recovery, checkpoint-vs-concurrent-apply
// interleavings, per-server interval jitter, XStore outage insulation,
// and the Backup() checkpoint/snapshot latency split.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "service/deployment.h"

namespace socrates {
namespace service {
namespace {

using engine::Engine;
using engine::MakeKey;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

// Run events until the driver coroutine finishes (periodic service
// loops keep scheduling timers forever, so Simulator::Run won't stop).
template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  int guard = 0;
  while (!done && s.Step()) {
    if (++guard > 200000000) break;
  }
  ASSERT_TRUE(done) << "driver task did not finish";
}

// Deployment sized so the dirty working set spans many pages, with the
// periodic checkpoint loop pushed out of the way: each test drives
// Checkpoint() explicitly unless it is testing the loop itself.
DeploymentOptions CheckpointDeployment(int page_servers = 1) {
  DeploymentOptions o;
  o.partition_map.pages_per_partition = 256;
  o.num_page_servers = page_servers;
  o.num_secondaries = 0;
  o.compute.mem_pages = 64;
  o.compute.ssd_pages = 256;
  o.page_server.mem_pages = 64;
  o.page_server.checkpoint_interval_us = 3600ull * 1000 * 1000;
  o.page_server.checkpoint_jitter_frac = 0;
  return o;
}

// Prefix taken by value: coroutine parameters are copied into the
// frame, so a spawned (not awaited) load can't dangle on a temporary.
Task<> LoadRows(Engine* e, uint64_t start, uint64_t n,
                std::string prefix) {
  for (uint64_t i = start; i < start + n; i += 8) {
    auto txn = e->Begin();
    for (uint64_t k = i; k < std::min(start + n, i + 8); k++) {
      (void)e->Put(txn.get(), MakeKey(1, k), prefix + std::to_string(k));
    }
    Status s = co_await e->Commit(txn.get());
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

Task<> VerifyRows(Engine* e, uint64_t start, uint64_t n,
                  std::string prefix) {
  auto txn = e->Begin(true);
  for (uint64_t k = start; k < start + n; k++) {
    auto v = co_await e->Get(txn.get(), MakeKey(1, k));
    EXPECT_TRUE(v.ok()) << "key " << k << ": " << v.status().ToString();
    if (v.ok()) {
      EXPECT_EQ(*v, prefix + std::to_string(k));
    }
  }
  (void)co_await e->Commit(txn.get());
}

bool Contains(const std::vector<PageId>& v, PageId id) {
  return std::find(v.begin(), v.end(), id) != v.end();
}

// The maintained dirty index must agree with a brute-force frame +
// SSD-metadata scan at any quiescent point.
void ExpectDirtyIndexConsistent(engine::BufferPool* pool) {
  std::vector<PageId> fast = pool->DirtyPages();
  std::vector<PageId> slow = pool->DirtyPagesByScan();
  std::sort(fast.begin(), fast.end());
  std::sort(slow.begin(), slow.end());
  EXPECT_EQ(fast, slow);
}

Task<> RunCheckpoint(pageserver::PageServer* ps, Status* st, bool* done) {
  *st = co_await ps->Checkpoint();
  *done = true;
}

// Satellite (a): a page re-dirtied by concurrent activity between image
// capture and the XStore write completion must stay dirty — the blob
// holds the stale image. On the pre-generation code ClearDirty wiped the
// bit unconditionally and the update was lost from the checkpoint.
TEST(CheckpointTest, RedirtyDuringCheckpointIsNotLost) {
  Simulator s;
  DeploymentOptions o = CheckpointDeployment();
  Deployment d(s, o);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 200, "v");
    auto* ps = d.page_server(0);
    co_await ps->applied_lsn().WaitFor(d.log_client().end_lsn());
    std::vector<PageId> dirty = ps->pool()->DirtyPages();
    EXPECT_FALSE(dirty.empty());
    if (dirty.empty()) co_return;
    PageId victim = dirty.front();
    EXPECT_TRUE((co_await ps->Checkpoint()).ok());
    EXPECT_TRUE(ps->pool()->DirtyPages().empty());

    // Dirty the victim with marker 'A', start a checkpoint, then
    // re-dirty with 'B' while the XStore write (~12 ms) is in flight.
    {
      auto ref = co_await ps->pool()->GetPage(victim);
      EXPECT_TRUE(ref.ok()) << ref.status().ToString();
      if (!ref.ok()) co_return;
      memset(ref->page()->data() + storage::kPageHeaderSize, 'A', 64);
      ref->MarkDirty();
    }
    Status cp_status;
    bool cp_done = false;
    Spawn(s, RunCheckpoint(ps, &cp_status, &cp_done));
    co_await sim::Delay(s, 2000);
    {
      auto ref = co_await ps->pool()->GetPage(victim);
      EXPECT_TRUE(ref.ok()) << ref.status().ToString();
      if (!ref.ok()) co_return;
      memset(ref->page()->data() + storage::kPageHeaderSize, 'B', 64);
      ref->MarkDirty();
    }
    while (!cp_done) co_await sim::Delay(s, 1000);
    EXPECT_TRUE(cp_status.ok()) << cp_status.ToString();

    // The blob image is the stale 'A'; the page must still be dirty.
    PageId first = o.partition_map.FirstPage(0);
    std::string raw = d.xstore().ReadRaw(
        ps->data_blob(), (victim - first) * kPageSize, kPageSize);
    EXPECT_EQ(raw[storage::kPageHeaderSize], 'A');
    EXPECT_TRUE(Contains(ps->pool()->DirtyPages(), victim));

    // The next round flushes 'B' and only then clears the page.
    EXPECT_TRUE((co_await ps->Checkpoint()).ok());
    EXPECT_FALSE(Contains(ps->pool()->DirtyPages(), victim));
    raw = d.xstore().ReadRaw(ps->data_blob(),
                             (victim - first) * kPageSize, kPageSize);
    EXPECT_EQ(raw[storage::kPageHeaderSize], 'B');
  });
  d.Stop();
}

// Acceptance: checkpoint_inflight_writes=1 must behave exactly like the
// old serial loop, and higher settings must produce byte-identical blob
// contents — concurrency reorders the writes, never the data.
TEST(CheckpointTest, InflightSettingsProduceIdenticalBlobBytes) {
  std::string blob_bytes[2];
  uint64_t pace_stalls[2] = {0, 0};
  const int inflight[2] = {1, 8};
  for (int run = 0; run < 2; run++) {
    Simulator s;
    DeploymentOptions o = CheckpointDeployment();
    o.page_server.checkpoint_inflight_writes = inflight[run];
    Deployment d(s, o);
    RunSim(s, [&]() -> Task<> {
      EXPECT_TRUE((co_await d.Start()).ok());
      co_await LoadRows(d.primary_engine(), 0, 2000, "w");
      auto* ps = d.page_server(0);
      co_await ps->applied_lsn().WaitFor(d.log_client().end_lsn());
      EXPECT_GT(ps->pool()->dirty_count(), 4u);
      EXPECT_TRUE((co_await ps->Checkpoint()).ok());
      EXPECT_TRUE(ps->pool()->DirtyPages().empty());
      blob_bytes[run] = d.xstore().ReadRaw(
          ps->data_blob(), 0, d.xstore().BlobSize(ps->data_blob()));
      pace_stalls[run] = ps->checkpoint_pace_stalls();
    });
    d.Stop();
  }
  ASSERT_FALSE(blob_bytes[0].empty());
  EXPECT_EQ(blob_bytes[0].size(), blob_bytes[1].size());
  EXPECT_EQ(blob_bytes[0], blob_bytes[1]);
  // At one permit the pacing loop never engages: with zero overlap the
  // serial order is already the most conservative schedule.
  EXPECT_EQ(pace_stalls[0], 0u);
}

// Satellite (c): crash while extent writes are in flight — some batches
// land in the data blob, StoreMeta never runs. The restart must replay
// from the previous restart_lsn and reconstruct correct pages.
TEST(CheckpointTest, CrashMidCheckpointReplaysFromOldRestartLsn) {
  Simulator s;
  Deployment d(s, CheckpointDeployment());
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 150, "p");
    auto* ps = d.page_server(0);
    co_await ps->applied_lsn().WaitFor(d.log_client().end_lsn());
    EXPECT_TRUE((co_await ps->Checkpoint()).ok());
    Lsn restart_before = ps->restart_lsn();
    EXPECT_GT(restart_before, engine::kLogStreamStart);

    // New updates, then die 3 ms into the next round: the first XStore
    // write (~12 ms) is still in flight, so at most a partial batch set
    // reached the blob and the meta record was never stored.
    co_await LoadRows(d.primary_engine(), 0, 150, "q");
    co_await ps->applied_lsn().WaitFor(d.log_client().end_lsn());
    EXPECT_FALSE(ps->pool()->DirtyPages().empty());
    Status cp_status;
    bool cp_done = false;
    Spawn(s, RunCheckpoint(ps, &cp_status, &cp_done));
    co_await sim::Delay(s, 3000);
    ps->Crash();
    while (!cp_done) co_await sim::Delay(s, 1000);
    EXPECT_FALSE(cp_status.ok());

    EXPECT_TRUE((co_await ps->Start()).ok());
    EXPECT_EQ(ps->restart_lsn(), restart_before);
    co_await ps->applied_lsn().WaitFor(d.log_client().end_lsn());
    // Drop the compute cache so every read below is a real GetPage@LSN
    // against the recovered server.
    d.primary()->pool()->Crash();
    co_await VerifyRows(d.primary_engine(), 0, 150, "q");
  });
  d.Stop();
}

// Satellite (c): checkpoints racing a live apply stream. Every round
// must succeed, the dirty index must stay consistent with the
// brute-force scan, and after quiescing the final round must leave the
// blob byte-identical to the in-memory images.
TEST(CheckpointTest, ConcurrentApplyInterleavings) {
  Simulator s;
  DeploymentOptions o = CheckpointDeployment();
  Deployment d(s, o);
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    auto* ps = d.page_server(0);
    bool load_done = false;
    Spawn(s, Wrap(LoadRows(d.primary_engine(), 0, 500, "c"), &load_done));
    for (int round = 0; round < 6; round++) {
      co_await sim::Delay(s, 4000);
      EXPECT_TRUE((co_await ps->Checkpoint()).ok());
      ExpectDirtyIndexConsistent(ps->pool());
    }
    while (!load_done) co_await sim::Delay(s, 1000);
    co_await ps->applied_lsn().WaitFor(d.log_client().end_lsn());

    std::vector<PageId> final_dirty = ps->pool()->DirtyPages();
    EXPECT_TRUE((co_await ps->Checkpoint()).ok());
    EXPECT_TRUE(ps->pool()->DirtyPages().empty());
    ExpectDirtyIndexConsistent(ps->pool());

    // Quiesced: for every page the last round wrote, the blob bytes
    // must equal the live image.
    PageId first = o.partition_map.FirstPage(0);
    for (PageId id : final_dirty) {
      auto ref = co_await ps->pool()->GetPage(id);
      EXPECT_TRUE(ref.ok()) << ref.status().ToString();
      if (!ref.ok()) continue;
      ref->EnsureChecksum();
      std::string raw = d.xstore().ReadRaw(
          ps->data_blob(), (id - first) * kPageSize, kPageSize);
      EXPECT_EQ(raw, std::string(ref->page()->data(), kPageSize))
          << "page " << id;
    }
    EXPECT_GT(ps->checkpoint_pages_written(), 0u);
    EXPECT_GT(ps->restart_lag_bytes().count(), 0u);
    EXPECT_GT(ps->checkpoint_duration_us().count(), 0u);
    co_await VerifyRows(d.primary_engine(), 0, 500, "c");
  });
  d.Stop();
}

// Satellite (b): with jitter enabled, replica Page Servers must not
// checkpoint in lockstep. Startup stagger already offsets the absolute
// round times, so compare each server\'s round-to-round gap: without
// jitter every server paces at exactly the same cadence; with jitter
// the (deterministically seeded) cadences diverge pairwise.
TEST(CheckpointTest, JitterDesynchronizesCheckpointRounds) {
  std::vector<SimTime> gaps[2];
  for (int run = 0; run < 2; run++) {
    Simulator s;
    DeploymentOptions o = CheckpointDeployment(/*page_servers=*/3);
    o.page_server.checkpoint_interval_us = 100 * 1000;
    o.page_server.checkpoint_jitter_frac = (run == 0) ? 0.5 : 0.0;
    Deployment d(s, o);
    RunSim(s, [&]() -> Task<> {
      EXPECT_TRUE((co_await d.Start()).ok());
      co_await sim::Delay(s, 600 * 1000);
      for (int p = 0; p < 3; p++) {
        const auto& starts = d.page_server(p)->checkpoint_starts();
        EXPECT_GE(starts.size(), 2u);
        if (starts.size() < 2) co_return;
        gaps[run].push_back(starts[1] - starts[0]);
      }
    });
    d.Stop();
  }
  ASSERT_EQ(gaps[0].size(), 3u);
  ASSERT_EQ(gaps[1].size(), 3u);
  auto spread = [](const std::vector<SimTime>& g) {
    return *std::max_element(g.begin(), g.end()) -
           *std::min_element(g.begin(), g.end());
  };
  // Control cadences differ only by per-round XStore latency noise
  // (a few ms); jittered cadences spread across a large slice of the
  // +/-50 ms window. Both runs are deterministic.
  EXPECT_GT(spread(gaps[0]), 2 * spread(gaps[1]));
  EXPECT_GT(spread(gaps[0]), 20 * 1000u);
}

// §4.6 outage insulation with the parallel writer: a failed round keeps
// every captured page dirty and the next round after recovery flushes
// them all.
TEST(CheckpointTest, XStoreOutageKeepsPagesDirtyAcrossParallelBatches) {
  Simulator s;
  Deployment d(s, CheckpointDeployment());
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 250, "o");
    auto* ps = d.page_server(0);
    co_await ps->applied_lsn().WaitFor(d.log_client().end_lsn());
    std::vector<PageId> dirty_before = ps->pool()->DirtyPages();
    std::sort(dirty_before.begin(), dirty_before.end());
    EXPECT_FALSE(dirty_before.empty());

    d.xstore().SetAvailable(false);
    Status cp = co_await ps->Checkpoint();
    EXPECT_FALSE(cp.ok());
    EXPECT_GT(ps->checkpoint_failures(), 0u);
    std::vector<PageId> dirty_after = ps->pool()->DirtyPages();
    std::sort(dirty_after.begin(), dirty_after.end());
    EXPECT_EQ(dirty_before, dirty_after);

    d.xstore().SetAvailable(true);
    EXPECT_TRUE((co_await ps->Checkpoint()).ok());
    EXPECT_TRUE(ps->pool()->DirtyPages().empty());
    co_await VerifyRows(d.primary_engine(), 0, 250, "o");
  });
  d.Stop();
}

// Satellite (f): Backup() reports its latency split. The snapshot part
// is the paper's constant-time claim: it must not grow with the dirty
// set, while the forced-checkpoint part does.
TEST(CheckpointTest, BackupReportsCheckpointVsSnapshotSplit) {
  Simulator s;
  Deployment d(s, CheckpointDeployment());
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    co_await LoadRows(d.primary_engine(), 0, 2000, "b");
    auto* ps = d.page_server(0);
    co_await ps->applied_lsn().WaitFor(d.log_client().end_lsn());
    EXPECT_GT(ps->pool()->dirty_count(), 4u);

    auto dirty_backup = co_await d.Backup();
    EXPECT_TRUE(dirty_backup.ok());
    if (!dirty_backup.ok()) co_return;
    // Immediately again: nothing dirty, the checkpoint part collapses
    // while the snapshot part stays put.
    auto clean_backup = co_await d.Backup();
    EXPECT_TRUE(clean_backup.ok());
    if (!clean_backup.ok()) co_return;

    EXPECT_GT(dirty_backup->snapshot_us, 0u);
    EXPECT_EQ(dirty_backup->snapshot_us, clean_backup->snapshot_us);
    EXPECT_GT(dirty_backup->checkpoint_us, clean_backup->checkpoint_us);
  });
  d.Stop();
}

}  // namespace
}  // namespace service
}  // namespace socrates
