// Crash-recovery fuzz: the core durability contract, tested the hard way.
// Disasters are drawn from a seeded chaos::FaultPlan — primary crashes
// (warm restart or failover), secondary and page-server crashes, network
// partitions (primary<->page-server and log delivery), lossy links, gray
// page servers, XStore/LZ outage windows, transient-failure bursts —
// interleaved with committed transactions. After every disaster, every
// acknowledged commit must be readable and no unacknowledged write may
// surface. Deterministic under seed sweep (TEST_P).

#include <gtest/gtest.h>

#include <map>

#include "chaos/fault_plan.h"
#include "service/deployment.h"

namespace socrates {
namespace service {
namespace {

using engine::Engine;
using engine::MakeKey;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  while (!done && s.Step()) {
  }
  ASSERT_TRUE(done) << "driver did not finish";
}

// A filtered (pushdown-eligible) scan against the acked state. While a
// fault window is open the degraded path may refuse it outright
// (require_ok=false), but an OK result must match the acked map exactly:
// kScanRange either retries through the fault or falls back to the local
// page path — it never returns wrong rows.
Task<> VerifyFilteredScan(Deployment& d, uint64_t mod, uint64_t res,
                          const std::map<uint64_t, std::string>& acked,
                          bool require_ok) {
  Engine* e = d.primary_engine();
  engine::ScanFilter f;
  f.predicate = common::ScanPredicate::KeyModEq(
      static_cast<uint32_t>(mod), static_cast<uint32_t>(res));
  auto txn = e->Begin(true);
  auto r = co_await e->ScanWhere(txn.get(), MakeKey(1, 0),
                                 MakeKey(1, 300), 0, f);
  if (r.ok()) {
    std::vector<std::pair<uint64_t, std::string>> want;
    for (auto& [k, v] : acked) {
      if (k % mod == res) want.emplace_back(k, v);
    }
    EXPECT_EQ(r->rows, want) << "filtered scan diverged from acked state";
  } else {
    EXPECT_FALSE(require_ok)
        << "scan on healed cluster failed: " << r.status().ToString();
  }
  (void)co_await e->Commit(txn.get());
}

// Commit a few transactions while a fault window is open: the degraded
// path may refuse them (never acked), but anything acked here is held
// to the same durability bar as calm-weather commits.
Task<> DegradedTraffic(Simulator& s, Deployment& d, Random& rng,
                       SimTime window_us,
                       std::map<uint64_t, std::string>* acked,
                       const std::string& tag) {
  for (int t = 0; t < 6; t++) {
    Engine* e = d.primary_engine();
    auto txn = e->Begin();
    uint64_t key = MakeKey(1, rng.Uniform(300));
    std::string val = tag + "t" + std::to_string(t);
    (void)e->Put(txn.get(), key, val);
    Status cs = co_await e->Commit(txn.get());
    if (cs.ok()) (*acked)[key] = val;
    co_await sim::Delay(s, window_us / 8);
  }
  // A mid-window analytic scan rides the same degraded links.
  co_await VerifyFilteredScan(d, 8, rng.Uniform(8), *acked, false);
}

// Apply one plan event synchronously: crashes are repaired in place
// (this fuzzer checks durability, not the monitor — see
// chaos_soak_test for autonomous recovery); window faults are armed on
// the injector, their heal rides a simulator timer (a commit stalled on
// an LZ outage must not deadlock against a driver-side heal), traffic
// flows through the degraded path, and the driver waits out the window
// before the verify pass.
Task<> ApplyDisaster(Simulator& s, Deployment& d,
                     const chaos::FaultEvent& ev, Random& rng,
                     std::map<uint64_t, std::string>* acked,
                     int* disasters) {
  chaos::Injector& inj = d.chaos();
  chaos::Injector* hub = &inj;
  const std::string ps_site = "ps-" + std::to_string(ev.index);
  const std::string tag = "d" + std::to_string(*disasters);
  const SimTime heal_at = s.now() + ev.duration_us;
  switch (ev.kind) {
    case chaos::FaultKind::kCrashPrimary: {
      if (d.num_secondaries() > 0 && rng.Bernoulli(0.5)) {
        EXPECT_TRUE((co_await d.Failover()).ok());
        EXPECT_TRUE((co_await d.AddSecondary()).ok());
      } else {
        if (rng.Bernoulli(0.5)) {
          EXPECT_TRUE((co_await d.Checkpoint()).ok());
        }
        EXPECT_TRUE((co_await d.RestartPrimary()).ok());
      }
      break;
    }
    case chaos::FaultKind::kCrashSecondary: {
      if (ev.index < d.num_secondaries()) {
        d.CrashSecondary(ev.index);
        d.RemoveSecondary(ev.index);
        EXPECT_TRUE((co_await d.AddSecondary()).ok());
      }
      break;
    }
    case chaos::FaultKind::kCrashPageServer: {
      auto* ps = d.page_server(ev.index % d.num_page_servers());
      ps->Crash();
      EXPECT_TRUE((co_await ps->Start()).ok());
      break;
    }
    case chaos::FaultKind::kPartitionPrimaryPs: {
      std::string site = d.primary()->chaos_site();
      inj.SetPartitioned(site, ps_site, true);
      s.ScheduleAt(heal_at, [hub, site, ps_site] {
        hub->SetPartitioned(site, ps_site, false);
      });
      co_await DegradedTraffic(s, d, rng, ev.duration_us, acked, tag);
      break;
    }
    case chaos::FaultKind::kPartitionLogDelivery: {
      inj.SetPartitioned("logwriter", "xlog", true);
      s.ScheduleAt(heal_at, [hub] {
        hub->SetPartitioned("logwriter", "xlog", false);
      });
      co_await DegradedTraffic(s, d, rng, ev.duration_us, acked, tag);
      break;
    }
    case chaos::FaultKind::kFlakyLink: {
      std::string site = d.primary()->chaos_site();
      inj.SetLink(site, ps_site, ev.drop_prob, ev.delay_us);
      s.ScheduleAt(heal_at, [hub, site, ps_site] {
        hub->SetLink(site, ps_site, 0, 0);
      });
      co_await DegradedTraffic(s, d, rng, ev.duration_us, acked, tag);
      break;
    }
    case chaos::FaultKind::kGrayPageServer: {
      inj.SetGrayDelay(ps_site, ev.delay_us);
      s.ScheduleAt(heal_at,
                   [hub, ps_site] { hub->SetGrayDelay(ps_site, 0); });
      co_await DegradedTraffic(s, d, rng, ev.duration_us, acked, tag);
      break;
    }
    case chaos::FaultKind::kXStoreOutage: {
      inj.SetOutage("xstore", true);
      s.ScheduleAt(heal_at, [hub] { hub->SetOutage("xstore", false); });
      co_await DegradedTraffic(s, d, rng, ev.duration_us, acked, tag);
      break;
    }
    case chaos::FaultKind::kLZOutage: {
      inj.SetOutage("lz", true);
      s.ScheduleAt(heal_at, [hub] { hub->SetOutage("lz", false); });
      co_await DegradedTraffic(s, d, rng, ev.duration_us, acked, tag);
      break;
    }
    case chaos::FaultKind::kTransientFailures: {
      // Arm the burst through the uniform hub, then drain it with probe
      // reads: a burst longer than the RBIO retry budget may fail
      // requests mid-burst, but the verify pass runs against a healed
      // server (the brownout analogue of waiting out a window).
      inj.InjectFailures(ps_site, ev.count);
      Engine* e = d.primary_engine();
      for (int i = 0; i < 50 && inj.FailuresRemaining(ps_site) > 0; i++) {
        auto probe = e->Begin(true);
        (void)co_await e->Get(probe.get(), MakeKey(1, rng.Uniform(300)));
        (void)co_await e->Commit(probe.get());
        if (i % 2 == 1) {
          // Pushdown scans must absorb the same burst: retry through it
          // or fall back, never return wrong rows.
          co_await VerifyFilteredScan(d, 8, i % 8, *acked, false);
        }
        co_await sim::Delay(s, 2000);
      }
      inj.InjectFailures(ps_site, 0);  // brownout over
      break;
    }
  }
  // Wait out the fault window so the verify pass runs on a healed
  // cluster (heals already fired if traffic overshot the window).
  if (s.now() < heal_at) co_await sim::Delay(s, heal_at - s.now());
  (*disasters)++;
}

class CrashFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CrashFuzz, AckedCommitsSurviveAnyDisaster) {
  const uint64_t seed = GetParam();
  Simulator s;
  DeploymentOptions o;
  o.partition_map.pages_per_partition = 512;
  o.num_page_servers = 2;
  o.num_secondaries = 1;
  o.compute.mem_pages = 48;
  o.compute.ssd_pages = 128;
  o.page_server.checkpoint_interval_us = 150 * 1000;
  Deployment d(s, o);

  // One disaster per round, drawn deterministically from the seed. LZ
  // outages are capped short so commits always eventually harden.
  chaos::RandomPlanOptions ro;
  ro.num_page_servers = 2;
  ro.num_secondaries = 1;
  ro.events = 12;
  ro.max_window_us = 150 * 1000;
  chaos::FaultPlan plan = chaos::FaultPlan::Random(seed, ro);

  std::map<uint64_t, std::string> acked;  // key -> last acked value
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    Random rng(seed);
    int disasters = 0;
    for (size_t round = 0; round < plan.events.size(); round++) {
      // A burst of committed transactions.
      int txns = 5 + static_cast<int>(rng.Uniform(15));
      for (int t = 0; t < txns; t++) {
        Engine* e = d.primary_engine();
        auto txn = e->Begin();
        std::map<uint64_t, std::string> writes;
        int ops = 1 + static_cast<int>(rng.Uniform(6));
        for (int i = 0; i < ops; i++) {
          uint64_t key = MakeKey(1, rng.Uniform(300));
          std::string val = "r" + std::to_string(round) + "t" +
                            std::to_string(t) + "i" + std::to_string(i);
          (void)e->Put(txn.get(), key, val);
          writes[key] = val;
        }
        Status cs = co_await e->Commit(txn.get());
        if (cs.ok()) {
          for (auto& [k, v] : writes) acked[k] = v;
        }
      }
      // Sometimes leave a transaction hanging open (never acked).
      std::unique_ptr<engine::Transaction> dangling;
      if (rng.Bernoulli(0.5)) {
        dangling = d.primary_engine()->Begin();
        (void)d.primary_engine()->Put(dangling.get(),
                                      MakeKey(2, 77777), "never-acked");
      }

      // Disaster! (From the seeded plan; windows heal before verify.)
      co_await ApplyDisaster(s, d, plan.events[round], rng, &acked,
                             &disasters);

      // Verify every acked value.
      Engine* e = d.primary_engine();
      auto reader = e->Begin(true);
      for (auto& [k, v] : acked) {
        auto r = co_await e->Get(reader.get(), k);
        EXPECT_TRUE(r.ok())
            << "round " << round << " key " << k << ": lost acked commit: "
            << r.status().ToString();
        if (r.ok()) {
          EXPECT_EQ(*r, v) << "round " << round << " key " << k;
        }
      }
      // The dangling write must never be visible.
      auto ghost = co_await e->Get(reader.get(), MakeKey(2, 77777));
      EXPECT_TRUE(ghost.status().IsNotFound());
      (void)co_await e->Commit(reader.get());
      // On the healed cluster a filtered scan must succeed and agree
      // with the acked state, whichever plan (pushdown or local) ran.
      co_await VerifyFilteredScan(d, 4, rng.Uniform(4), acked, true);
      if (dangling) {
        // After a restart the old engine object may be gone; only abort
        // on the engine that created it.
        dangling.reset();
      }
    }
    EXPECT_GT(disasters, 5);
  });
  d.Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashFuzz,
                         ::testing::Values(1, 7, 23, 59, 101));

}  // namespace
}  // namespace service
}  // namespace socrates
