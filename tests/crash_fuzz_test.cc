// Crash-recovery fuzz: the core durability contract, tested the hard way.
// Random committed transactions interleave with randomly chosen disasters
// (primary warm restart, failover to a secondary, page-server crash,
// XStore outage windows); after every disaster, every acknowledged commit
// must be readable and no unacknowledged write may surface. Deterministic
// under seed sweep (TEST_P).

#include <gtest/gtest.h>

#include <map>

#include "service/deployment.h"

namespace socrates {
namespace service {
namespace {

using engine::Engine;
using engine::MakeKey;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

Task<> Wrap(Task<> inner, bool* done) {
  co_await std::move(inner);
  *done = true;
}

template <typename Fn>
void RunSim(Simulator& s, Fn&& fn) {
  bool done = false;
  Spawn(s, Wrap(fn(), &done));
  while (!done && s.Step()) {
  }
  ASSERT_TRUE(done) << "driver did not finish";
}

class CrashFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CrashFuzz, AckedCommitsSurviveAnyDisaster) {
  const uint64_t seed = GetParam();
  Simulator s;
  DeploymentOptions o;
  o.partition_map.pages_per_partition = 512;
  o.num_page_servers = 2;
  o.num_secondaries = 1;
  o.compute.mem_pages = 48;
  o.compute.ssd_pages = 128;
  o.page_server.checkpoint_interval_us = 150 * 1000;
  Deployment d(s, o);

  std::map<uint64_t, std::string> acked;  // key -> last acked value
  RunSim(s, [&]() -> Task<> {
    EXPECT_TRUE((co_await d.Start()).ok());
    Random rng(seed);
    int disasters = 0;
    for (int round = 0; round < 12; round++) {
      // A burst of committed transactions.
      int txns = 5 + static_cast<int>(rng.Uniform(15));
      for (int t = 0; t < txns; t++) {
        Engine* e = d.primary_engine();
        auto txn = e->Begin();
        std::map<uint64_t, std::string> writes;
        int ops = 1 + static_cast<int>(rng.Uniform(6));
        for (int i = 0; i < ops; i++) {
          uint64_t key = MakeKey(1, rng.Uniform(300));
          std::string val =
              "r" + std::to_string(round) + "t" + std::to_string(t) +
              "i" + std::to_string(i);
          (void)e->Put(txn.get(), key, val);
          writes[key] = val;
        }
        Status cs = co_await e->Commit(txn.get());
        if (cs.ok()) {
          for (auto& [k, v] : writes) acked[k] = v;
        }
      }
      // Sometimes leave a transaction hanging open (never acked).
      std::unique_ptr<engine::Transaction> dangling;
      if (rng.Bernoulli(0.5)) {
        dangling = d.primary_engine()->Begin();
        (void)d.primary_engine()->Put(dangling.get(),
                                      MakeKey(2, 77777), "never-acked");
      }

      // Disaster!
      switch (rng.Uniform(5)) {
        case 0: {  // warm primary restart
          if (rng.Bernoulli(0.5)) {
            EXPECT_TRUE((co_await d.Checkpoint()).ok());
          }
          EXPECT_TRUE((co_await d.RestartPrimary()).ok());
          disasters++;
          break;
        }
        case 1: {  // failover to a secondary; respawn a new secondary
          EXPECT_TRUE((co_await d.Failover()).ok());
          EXPECT_TRUE((co_await d.AddSecondary()).ok());
          disasters++;
          break;
        }
        case 2: {  // page server crash + restart
          auto* ps = d.page_server(
              static_cast<int>(rng.Uniform(d.num_page_servers())));
          ps->Crash();
          EXPECT_TRUE((co_await ps->Start()).ok());
          disasters++;
          break;
        }
        case 3: {  // XStore outage window (checkpoints must insulate)
          d.xstore().SetAvailable(false);
          co_await sim::Delay(s, 200 * 1000);
          d.xstore().SetAvailable(true);
          disasters++;
          break;
        }
        default:
          break;  // calm round
      }

      // Verify every acked value.
      Engine* e = d.primary_engine();
      auto reader = e->Begin(true);
      for (auto& [k, v] : acked) {
        auto r = co_await e->Get(reader.get(), k);
        EXPECT_TRUE(r.ok())
            << "round " << round << " key " << k << ": lost acked commit";
        if (r.ok()) {
          EXPECT_EQ(*r, v) << "round " << round << " key " << k;
        }
      }
      // The dangling write must never be visible.
      auto ghost = co_await e->Get(reader.get(), MakeKey(2, 77777));
      EXPECT_TRUE(ghost.status().IsNotFound());
      (void)co_await e->Commit(reader.get());
      if (dangling) {
        // After a restart the old engine object may be gone; only abort
        // on the engine that created it.
        dangling.reset();
      }
    }
    EXPECT_GT(disasters, 3);
  });
  d.Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashFuzz,
                         ::testing::Values(1, 7, 23, 59, 101));

}  // namespace
}  // namespace service
}  // namespace socrates
